"""Fleet coordinator: expand, spawn, verify, and exactly merge.

The coordinator owns the job lifecycle the workers deliberately don't:

1. **Expand** — :meth:`Coordinator.create` turns a capture source into
   a durable manifest (idempotent: re-creating over a half-finished job
   continues it, a *different* job in the same directory is refused).
2. **Drive** — :meth:`Coordinator.run_local` spawns pull-based worker
   subprocesses (``python -m repro fleet-worker``) and watches shard
   states, respawning rounds of workers until every shard is terminal;
   crashed workers are harmless because their leases go stale.
3. **Verify** — :meth:`Coordinator.verify_done_shards` re-reads every
   ``done`` NPZ and checks its embedded cursor against the manifest
   fingerprint and the shard's batch digest.  Corrupt, truncated, or
   foreign shards are *quarantined and requeued* — never silently
   merged, never silently dropped.
4. **Merge** — :meth:`Coordinator.merge` combines verified shards with
   the exact int64 merge and reports coverage, degrading gracefully to
   a partial-but-exact result when shards exhausted their retry budget.

``execute`` strings these together and is what the experiment registry
calls for ``distributed=N`` runs.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from ..config import ReproConfig, get_config
from ..errors import FleetError
from .manifest import (
    DONE,
    FAILED,
    JobManifest,
    JobPaths,
    JobStatus,
    PENDING,
    job_status,
    read_shard_state,
    write_shard_state,
)
from .sources import build_source
from .worker import run_worker


@dataclass(frozen=True)
class FleetProgress:
    """One coordinator progress notification.

    Attributes:
        stage: ``expand`` / ``capture`` / ``verify`` / ``merge``.
        shards_done / shards_failed / num_shards: shard counters.
        requests_done / total_requests: request counters (done shards).
        message: human-readable detail (quarantines, failures).
    """

    stage: str
    shards_done: int
    shards_failed: int
    num_shards: int
    requests_done: int
    total_requests: int
    message: str = ""


FleetProgressCallback = Callable[[FleetProgress], None]


@dataclass(frozen=True)
class CoverageReport:
    """Exactly which part of the campaign a merge covers.

    ``complete`` jobs are bit-exact with an uninterrupted single-process
    run; partial jobs are bit-exact over ``batches_done`` and name the
    missing shards and why they failed.
    """

    num_shards: int
    shards_done: tuple[int, ...]
    shards_failed: tuple[tuple[int, str], ...]
    batches_done: int
    num_batches: int
    requests_done: int
    total_requests: int

    @property
    def complete(self) -> bool:
        return len(self.shards_done) == self.num_shards

    def to_jsonable(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "shards_done": list(self.shards_done),
            "shards_failed": [
                {"shard": index, "error": error}
                for index, error in self.shards_failed
            ],
            "batches_done": self.batches_done,
            "num_batches": self.num_batches,
            "requests_done": self.requests_done,
            "total_requests": self.total_requests,
            "complete": self.complete,
        }


@dataclass
class Coordinator:
    """Drives one fleet job directory to a verified exact merge."""

    paths: JobPaths
    manifest: JobManifest
    config: ReproConfig = field(default_factory=get_config)

    # --- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        source,
        job_dir: str | Path,
        *,
        num_shards: int,
        config: ReproConfig | None = None,
        checkpoint_every: int = 4,
    ) -> "Coordinator":
        """Expand ``source`` into a manifest in ``job_dir`` (idempotent)."""
        if config is None:
            config = get_config()
        manifest = JobManifest.from_source(
            source,
            num_shards=num_shards,
            lease_ttl=config.fleet_lease_ttl,
            retry_budget=config.fleet_retry_budget,
            backoff_base=config.fleet_backoff_base,
            checkpoint_every=checkpoint_every,
        )
        manifest.write(job_dir)
        # Reload: an existing compatible manifest's policy knobs win,
        # so coordinator restarts honour what the workers already obey.
        manifest = JobManifest.load(job_dir)
        return cls(
            paths=JobPaths(Path(job_dir)), manifest=manifest, config=config
        )

    @classmethod
    def open(
        cls, job_dir: str | Path, *, config: ReproConfig | None = None
    ) -> "Coordinator":
        """Attach to an existing job directory."""
        return cls(
            paths=JobPaths(Path(job_dir)),
            manifest=JobManifest.load(job_dir),
            config=config if config is not None else get_config(),
        )

    # --- inspection -------------------------------------------------------

    def status(self) -> JobStatus:
        return job_status(self.paths, self.manifest)

    def source(self):
        return build_source(self.manifest.descriptor, self.config)

    def _progress(
        self,
        callback: FleetProgressCallback | None,
        stage: str,
        message: str = "",
        status: JobStatus | None = None,
    ) -> None:
        if callback is None:
            return
        if status is None:
            status = self.status()
        done = status.of(DONE)
        callback(
            FleetProgress(
                stage=stage,
                shards_done=len(done),
                shards_failed=len(status.of(FAILED)),
                num_shards=len(self.manifest.shards),
                requests_done=sum(s.requests_done for s in done),
                total_requests=self.manifest.total_requests,
                message=message,
            )
        )

    # --- capture ----------------------------------------------------------

    def run_inline(
        self, *, progress: FleetProgressCallback | None = None
    ) -> JobStatus:
        """Drive the whole job with one in-process worker (no spawning)."""
        run_worker(
            self.paths.root, worker_id="coordinator-inline", config=self.config
        )
        status = self.status()
        self._progress(progress, "capture", status=status)
        return status

    def _worker_command(self) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "fleet-worker",
            str(self.paths.root),
            "--wait-for-peers",
        ]

    def _worker_env(self, workers: int) -> dict[str, str]:
        env = dict(os.environ)
        import repro

        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        # Split native kernel threads across workers instead of letting
        # every worker grab every core.
        if workers > 1 and "REPRO_NATIVE_THREADS" not in env:
            cores = os.cpu_count() or 1
            env["REPRO_NATIVE_THREADS"] = str(max(1, cores // workers))
        return env

    def run_local(
        self,
        *,
        workers: int,
        progress: FleetProgressCallback | None = None,
        poll: float = 0.2,
        max_rounds: int | None = None,
    ) -> JobStatus:
        """Spawn local worker subprocesses until every shard is terminal.

        A *round* spawns ``workers`` processes and waits for them all to
        exit; workers exit when every shard is done or failed, so a
        non-terminal job after a round means workers crashed.  Rounds
        repeat (stale leases make crashed shards claimable again) up to
        ``max_rounds`` (default: retry budget + 1), after which a
        :class:`FleetError` reports the stuck state.
        """
        if workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        if max_rounds is None:
            max_rounds = self.manifest.retry_budget + 1
        env = self._worker_env(workers)
        for _ in range(max_rounds):
            status = self.status()
            if status.terminal:
                return status
            procs = [
                subprocess.Popen(
                    self._worker_command(),
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                for _ in range(workers)
            ]
            last_done = -1
            try:
                while any(p.poll() is None for p in procs):
                    time.sleep(poll)
                    status = self.status()
                    done = len(status.of(DONE))
                    if done != last_done:
                        last_done = done
                        self._progress(progress, "capture", status=status)
            finally:
                for p in procs:
                    if p.poll() is None:
                        p.terminate()
                for p in procs:
                    try:
                        p.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        p.kill()
            status = self.status()
            self._progress(progress, "capture", status=status)
            if status.terminal:
                return status
        raise FleetError(
            f"fleet job not terminal after {max_rounds} worker rounds "
            f"(shard counts: {self.status().counts})"
        )

    # --- verification and merge -------------------------------------------

    def verify_done_shards(
        self,
        *,
        progress: FleetProgressCallback | None = None,
        source=None,
    ) -> list[int]:
        """Re-check every ``done`` shard NPZ; quarantine + requeue bad ones.

        Returns the indices that failed verification (now ``pending``
        again).  Merging without a clean verify pass is how silent
        corruption would creep into "exact" statistics — so
        :meth:`merge` refuses unverified shards by re-running this.
        """
        from ..capture.engine import CORRUPT_CHECKPOINT_ERRORS

        if source is None:
            source = self.source()
        bad: list[int] = []
        for shard in self.manifest.shards:
            state = read_shard_state(self.paths, shard.index)
            if state.state != DONE:
                continue
            path = self.paths.result(shard.index)
            problem = ""
            try:
                _, extra = source.load(path)
                cursor = extra.get("capture_checkpoint")
                if not isinstance(cursor, dict):
                    problem = "missing capture cursor"
                elif cursor.get("fingerprint") != self.manifest.fingerprint:
                    problem = "fingerprint mismatch"
                elif cursor.get("batch_digest") != shard.digest():
                    problem = "batch digest mismatch"
                elif int(cursor.get("batches_done", -1)) != shard.num_batches:
                    problem = "incomplete batch coverage"
            except CORRUPT_CHECKPOINT_ERRORS as exc:
                problem = f"unreadable ({exc.__class__.__name__}: {exc})"
            except FileNotFoundError:
                problem = "result NPZ missing"
            if not problem:
                continue
            bad.append(shard.index)
            self._quarantine(shard.index, problem)
            self._progress(
                progress,
                "verify",
                message=f"shard {shard.index} quarantined: {problem}",
            )
        return bad

    def _quarantine(self, index: int, problem: str) -> None:
        """Move a bad shard NPZ aside and put the shard back in play."""
        self.paths.quarantine.mkdir(parents=True, exist_ok=True)
        src = self.paths.result(index)
        if src.exists():
            attempt = 0
            while True:
                dst = self.paths.quarantine / (
                    f"shard-{index:05d}.{attempt}.npz"
                )
                if not dst.exists():
                    break
                attempt += 1
            os.replace(src, dst)
        state = read_shard_state(self.paths, index)
        write_shard_state(
            self.paths,
            replace(
                state,
                state=PENDING,
                error=f"quarantined: {problem}",
                requests_done=0,
            ),
        )

    def merge(self, *, source=None):
        """Exactly merge every verified ``done`` shard.

        Returns ``(statistics, CoverageReport)``.  Zero done shards
        yield empty statistics with a zero-coverage report — the partial
        merge is always *exact over what it covers*.
        """
        from ..capture.engine import merge_shards

        if source is None:
            source = self.source()
        done: list[int] = []
        failed: list[tuple[int, str]] = []
        requests = 0
        batches = 0
        loaded = []
        for shard in self.manifest.shards:
            state = read_shard_state(self.paths, shard.index)
            if state.state == DONE:
                stats, _ = source.load(self.paths.result(shard.index))
                loaded.append(stats)
                done.append(shard.index)
                requests += state.requests_done
                batches += shard.num_batches
            elif state.state == FAILED:
                failed.append((shard.index, state.error))
            else:
                failed.append(
                    (shard.index, f"not terminal ({state.state})")
                )
        total = merge_shards(loaded) if loaded else source.empty()
        report = CoverageReport(
            num_shards=len(self.manifest.shards),
            shards_done=tuple(done),
            shards_failed=tuple(failed),
            batches_done=batches,
            num_batches=self.manifest.num_batches,
            requests_done=requests,
            total_requests=self.manifest.total_requests,
        )
        return total, report

    # --- the full lifecycle ----------------------------------------------

    def execute(
        self,
        *,
        workers: int,
        progress: FleetProgressCallback | None = None,
        runner: Callable[[], JobStatus] | None = None,
    ):
        """Capture → verify (requeue + recapture) → merge, end to end.

        ``runner`` overrides how a capture round is driven (tests inject
        in-process workers); the default spawns ``workers`` local
        subprocesses, or runs inline when ``workers == 1``.
        """
        if runner is None:
            if workers == 1:
                runner = lambda: self.run_inline(progress=progress)  # noqa: E731
            else:
                runner = lambda: self.run_local(  # noqa: E731
                    workers=workers, progress=progress
                )
        self._progress(progress, "expand")
        source = self.source()
        # Verification can requeue shards, so capture+verify may need
        # more than one pass; each requeued claim burns shard attempts,
        # so the retry budget still bounds the loop.
        for _ in range(self.manifest.retry_budget + 1):
            runner()
            bad = self.verify_done_shards(progress=progress, source=source)
            if not bad:
                break
        else:
            raise FleetError(
                "shards kept failing verification after "
                f"{self.manifest.retry_budget + 1} capture passes"
            )
        stats, report = self.merge(source=source)
        self._progress(
            progress,
            "merge",
            message=(
                "complete"
                if report.complete
                else f"partial: {len(report.shards_failed)} shard(s) missing"
            ),
        )
        return stats, report


def fleet_capture(
    source,
    job_dir: str | Path,
    *,
    num_shards: int,
    workers: int,
    config: ReproConfig | None = None,
    checkpoint_every: int = 4,
    progress: FleetProgressCallback | None = None,
):
    """One-call distributed capture: expand, drive, verify, merge.

    The ``distributed=N`` experiment path: equivalent to
    ``run_capture(source)`` when everything goes right, and to the best
    exact partial merge (plus a truthful :class:`CoverageReport`) when
    shards exhaust their retry budget.  Merging is bit-exact: the
    counters of a complete fleet run equal a single-process capture of
    the same source, which is what lets warehouse fingerprints ignore
    how a run was executed.

    Args:
        source: the capture campaign (see
            :func:`repro.fleet.build_source`).
        job_dir: shared directory holding the manifest, leases, shard
            checkpoints, and promoted statistics; survives crashes and
            is what a re-invocation resumes from.
        num_shards: how many disjoint batch-ranges to expand into.
        workers: in-process worker threads to drive (external
            ``python -m repro fleet-worker`` processes may join too).
        config: retry budget / backoff knobs; ``None`` reads the
            environment.
        checkpoint_every: batches between shard checkpoint writes.
        progress: optional :class:`FleetProgress` callback.

    Returns:
        ``(stats, report)`` — the merged
        :class:`~repro.capture.SufficientStatistics` and the
        :class:`CoverageReport` saying exactly which shards made it.

    Example:

        >>> from repro.fleet import build_source, fleet_capture
        >>> source = build_source("https", num_requests=1 << 12,
        ...                       config=config)              # doctest: +SKIP
        >>> stats, report = fleet_capture(source, "job/",
        ...                               num_shards=8, workers=2)  # doctest: +SKIP
        >>> report.complete                                   # doctest: +SKIP
        True
    """
    coordinator = Coordinator.create(
        source,
        job_dir,
        num_shards=num_shards,
        config=config,
        checkpoint_every=checkpoint_every,
    )
    return coordinator.execute(workers=workers, progress=progress)
