"""Durable job manifests: a capture campaign expanded into shards.

A fleet job lives entirely in one shared directory — that is the whole
coordination substrate, chosen deliberately so the same manifest can
saturate one core or a thousand machines mounting the same filesystem
(the paper's §3.2 cluster shape).  Layout::

    job_dir/
      manifest.json              immutable job record (this module)
      shards/
        shard-00007.state.json   mutable per-shard state (atomic replace)
        shard-00007.lease        exists while leased; mtime = heartbeat
        shard-00007.ckpt.npz     run_capture checkpoint (mid-shard resume)
        shard-00007.npz          finished shard statistics
      quarantine/                corrupt shard NPZs moved aside at merge

The manifest is written once and never mutated; every piece of mutable
state is per-shard, written only by the current lease holder (single
writer), via write-to-temp + fsync + atomic rename.  A shard's effective
state is *derived* — ``done``/``failed`` from the state file, ``leased``
from a fresh lease file, ``pending`` otherwise — so a crashed worker
never wedges the job: its lease goes stale and the shard becomes
claimable again.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

from ..capture.engine import batch_digest, shard_batches, source_fingerprint
from ..config import (
    DEFAULT_FLEET_BACKOFF_BASE,
    DEFAULT_FLEET_LEASE_TTL,
    DEFAULT_FLEET_RETRY_BUDGET,
)
from ..errors import ManifestError
from ..utils.serialization import canonical_json

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Shard state machine: pending -> leased -> done | failed (with
#: leased -> pending on retryable failure or stale-lease reclaim).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
SHARD_STATES = (PENDING, LEASED, DONE, FAILED)

#: Human-readable meaning of each shard state — one source of truth for
#: the ``fleet-status`` CLI epilog and the README failure matrix.
STATE_DESCRIPTIONS = {
    PENDING: (
        "unclaimed; any worker may lease it (retryable failures and "
        "stale-lease reclaims requeue shards here)"
    ),
    LEASED: (
        "a worker holds the O_EXCL lease and heartbeats its mtime; a "
        "stale heartbeat lets another worker take over atomically"
    ),
    DONE: "captured, verified, and promoted; its statistics are mergeable",
    FAILED: (
        "retry budget exhausted or output quarantined as corrupt; "
        "excluded from the merge and listed in the coverage report"
    ),
}


def fsync_path(path: str | Path) -> None:
    """Flush a written file to stable storage before renaming it."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Durably replace ``path`` with ``payload`` (temp + fsync + rename)."""
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(canonical_json(payload))
    fsync_path(tmp)
    os.replace(tmp, path)


def read_json(path: Path) -> dict[str, Any]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ManifestError(f"{path}: unreadable JSON record ({exc})") from exc
    if not isinstance(payload, dict):
        raise ManifestError(f"{path}: expected a JSON object")
    return payload


@dataclass(frozen=True)
class ShardSpec:
    """One immutable shard of the batch space."""

    index: int
    start: int
    stop: int

    @property
    def batches(self) -> range:
        return range(self.start, self.stop)

    @property
    def num_batches(self) -> int:
        return self.stop - self.start

    def digest(self) -> str:
        """The batch digest :func:`run_capture` stamps into checkpoints."""
        return batch_digest(list(self.batches))


@dataclass(frozen=True)
class ShardState:
    """Mutable per-shard progress record (single writer: lease holder).

    Attributes:
        index: shard index into the manifest.
        state: one of :data:`SHARD_STATES`.
        attempts: claims so far (a claim = one lease acquisition).
        not_before: earliest epoch second the next claim may happen
            (capped exponential backoff after a retryable failure).
        worker: id of the last worker that touched the shard.
        error: recorded reason when ``state == failed`` (or the last
            retryable error while still pending).
        requests_done: requests accumulated by the finished shard.
    """

    index: int
    state: str = PENDING
    attempts: int = 0
    not_before: float = 0.0
    worker: str = ""
    error: str = ""
    requests_done: int = 0

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "state": self.state,
            "attempts": self.attempts,
            "not_before": self.not_before,
            "worker": self.worker,
            "error": self.error,
            "requests_done": self.requests_done,
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, Any]) -> "ShardState":
        state = payload.get("state", PENDING)
        if state not in SHARD_STATES:
            raise ManifestError(f"unknown shard state {state!r}")
        return cls(
            index=int(payload["index"]),
            state=state,
            attempts=int(payload.get("attempts", 0)),
            not_before=float(payload.get("not_before", 0.0)),
            worker=str(payload.get("worker", "")),
            error=str(payload.get("error", "")),
            requests_done=int(payload.get("requests_done", 0)),
        )


@dataclass(frozen=True)
class JobPaths:
    """Every path the fleet derives from a job directory."""

    root: Path

    @property
    def manifest(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def shards(self) -> Path:
        return self.root / "shards"

    @property
    def quarantine(self) -> Path:
        return self.root / "quarantine"

    def _shard(self, index: int, suffix: str) -> Path:
        return self.shards / f"shard-{index:05d}{suffix}"

    def state(self, index: int) -> Path:
        return self._shard(index, ".state.json")

    def lease(self, index: int) -> Path:
        return self._shard(index, ".lease")

    def checkpoint(self, index: int) -> Path:
        return self._shard(index, ".ckpt.npz")

    def result(self, index: int) -> Path:
        return self._shard(index, ".npz")


@dataclass(frozen=True)
class JobManifest:
    """The immutable record a capture job is coordinated from.

    Everything a worker on another machine needs: the source descriptor
    (seed, layout, batching — enough to rebuild the
    :class:`~repro.capture.engine.CaptureSource` bit-exactly), the
    campaign fingerprint every checkpoint and shard NPZ must match, the
    shard partition of the batch space, and the failure-policy knobs.
    """

    kind: str
    descriptor: dict[str, Any]
    fingerprint: str
    num_batches: int
    total_requests: int
    shards: tuple[ShardSpec, ...]
    lease_ttl: float = DEFAULT_FLEET_LEASE_TTL
    retry_budget: int = DEFAULT_FLEET_RETRY_BUDGET
    backoff_base: float = DEFAULT_FLEET_BACKOFF_BASE
    checkpoint_every: int = 4
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        if self.version != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {self.version!r} "
                f"(expected {MANIFEST_VERSION})"
            )
        if self.lease_ttl <= 0.0:
            raise ManifestError(f"lease_ttl must be > 0, got {self.lease_ttl}")
        if self.retry_budget < 1:
            raise ManifestError(
                f"retry_budget must be >= 1, got {self.retry_budget}"
            )
        if self.backoff_base < 0.0:
            raise ManifestError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.checkpoint_every < 1:
            raise ManifestError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        covered = [b for shard in self.shards for b in shard.batches]
        if covered != list(range(self.num_batches)):
            raise ManifestError(
                "shards do not partition the batch space "
                f"0..{self.num_batches - 1}"
            )

    # --- construction -----------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source,
        *,
        num_shards: int,
        lease_ttl: float = DEFAULT_FLEET_LEASE_TTL,
        retry_budget: int = DEFAULT_FLEET_RETRY_BUDGET,
        backoff_base: float = DEFAULT_FLEET_BACKOFF_BASE,
        checkpoint_every: int = 4,
    ) -> "JobManifest":
        """Expand a capture source into a shard manifest."""
        descriptor = source.descriptor()
        ranges = shard_batches(source.num_batches, num_shards)
        shards = tuple(
            ShardSpec(index=i, start=r.start, stop=r.stop)
            for i, r in enumerate(ranges)
        )
        return cls(
            kind=descriptor["kind"],
            descriptor=descriptor,
            fingerprint=source.fingerprint(),
            num_batches=source.num_batches,
            total_requests=source.total_requests,
            shards=shards,
            lease_ttl=lease_ttl,
            retry_budget=retry_budget,
            backoff_base=backoff_base,
            checkpoint_every=checkpoint_every,
        )

    # --- persistence ------------------------------------------------------

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "kind": self.kind,
            "descriptor": self.descriptor,
            "fingerprint": self.fingerprint,
            "num_batches": self.num_batches,
            "total_requests": self.total_requests,
            "shards": [
                {"index": s.index, "start": s.start, "stop": s.stop}
                for s in self.shards
            ],
            "lease_ttl": self.lease_ttl,
            "retry_budget": self.retry_budget,
            "backoff_base": self.backoff_base,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, Any]) -> "JobManifest":
        try:
            shards = tuple(
                ShardSpec(
                    index=int(s["index"]),
                    start=int(s["start"]),
                    stop=int(s["stop"]),
                )
                for s in payload["shards"]
            )
            return cls(
                kind=str(payload["kind"]),
                descriptor=dict(payload["descriptor"]),
                fingerprint=str(payload["fingerprint"]),
                num_batches=int(payload["num_batches"]),
                total_requests=int(payload["total_requests"]),
                shards=shards,
                lease_ttl=float(payload["lease_ttl"]),
                retry_budget=int(payload["retry_budget"]),
                backoff_base=float(payload["backoff_base"]),
                checkpoint_every=int(payload["checkpoint_every"]),
                version=int(payload.get("version", MANIFEST_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc

    def write(self, job_dir: str | Path) -> Path:
        """Durably publish the manifest into ``job_dir`` (idempotent).

        An existing manifest with the same fingerprint and shard
        partition is left untouched — re-running a coordinator on a
        half-finished job must continue it, never restart it.  A
        mismatched manifest is a hard error: silently re-sharding a
        directory with in-flight shards would double-count batches.
        """
        paths = JobPaths(Path(job_dir))
        paths.shards.mkdir(parents=True, exist_ok=True)
        if paths.manifest.exists():
            existing = JobManifest.load(paths.root)
            if (
                existing.fingerprint == self.fingerprint
                and existing.shards == self.shards
            ):
                return paths.manifest
            raise ManifestError(
                f"{paths.manifest} already coordinates a different job "
                "(fingerprint or shard partition mismatch); use a fresh "
                "job directory"
            )
        atomic_write_json(paths.manifest, self.to_jsonable())
        return paths.manifest

    @classmethod
    def load(cls, job_dir: str | Path) -> "JobManifest":
        paths = JobPaths(Path(job_dir))
        if not paths.manifest.exists():
            raise ManifestError(f"no fleet manifest at {paths.manifest}")
        return cls.from_jsonable(read_json(paths.manifest))

    # --- derived ----------------------------------------------------------

    def verify_descriptor(self) -> None:
        """Check the stored fingerprint still matches the descriptor."""
        if source_fingerprint(self.descriptor) != self.fingerprint:
            raise ManifestError(
                "manifest fingerprint does not match its descriptor "
                "(corrupted or hand-edited manifest)"
            )

    def shard(self, index: int) -> ShardSpec:
        if not 0 <= index < len(self.shards):
            raise ManifestError(
                f"shard {index} outside 0..{len(self.shards) - 1}"
            )
        return self.shards[index]


def read_shard_state(paths: JobPaths, index: int) -> ShardState:
    """The recorded state of a shard (``pending`` when never touched)."""
    path = paths.state(index)
    if not path.exists():
        return ShardState(index=index)
    return ShardState.from_jsonable(read_json(path))


def write_shard_state(paths: JobPaths, state: ShardState) -> None:
    """Durably replace a shard's state record (lease holder only)."""
    atomic_write_json(paths.state(state.index), state.to_jsonable())


def effective_state(
    paths: JobPaths,
    manifest: JobManifest,
    index: int,
    *,
    now: float | None = None,
) -> ShardState:
    """The *effective* state: recorded state with stale leases decayed.

    A shard recorded ``leased`` whose lease file is gone or stale (no
    heartbeat within ``lease_ttl``) is effectively ``pending`` again —
    that is the crash-recovery rule that makes dead workers harmless.
    """
    state = read_shard_state(paths, index)
    if state.state != LEASED:
        return state
    lease = paths.lease(index)
    try:
        age = (now if now is not None else time.time()) - lease.stat().st_mtime
    except OSError:
        return replace(state, state=PENDING)
    if age > manifest.lease_ttl:
        return replace(state, state=PENDING)
    return state


@dataclass
class JobStatus:
    """Aggregated view of every shard, for progress and reports."""

    states: list[ShardState] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        totals = {state: 0 for state in SHARD_STATES}
        for shard in self.states:
            totals[shard.state] += 1
        return totals

    @property
    def terminal(self) -> bool:
        return all(s.state in (DONE, FAILED) for s in self.states)

    def of(self, state: str) -> list[ShardState]:
        return [s for s in self.states if s.state == state]


def job_status(
    paths: JobPaths, manifest: JobManifest, *, now: float | None = None
) -> JobStatus:
    """Effective states of every shard in the manifest."""
    if now is None:
        now = time.time()
    return JobStatus(
        states=[
            effective_state(paths, manifest, shard.index, now=now)
            for shard in manifest.shards
        ]
    )


def shard_sequence(manifest: JobManifest, worker_seed: int) -> Sequence[int]:
    """Shard visit order for a worker: rotated so workers spread out.

    Deterministic per worker (no RNG — the fleet must not perturb the
    statistics streams) yet different across workers, so N workers
    claiming from the same manifest mostly start on different shards
    instead of contending on shard 0.
    """
    n = len(manifest.shards)
    if n == 0:
        return ()
    offset = worker_seed % n
    return tuple(range(offset, n)) + tuple(range(offset))
