"""Pull-based fleet workers: claim a shard, capture it, promote it.

A worker is deliberately dumb: it knows only the job directory.  It
loads the manifest, verifies the descriptor rebuilds a source with the
manifest's fingerprint, then loops — claim an eligible shard with a
lease, run :func:`~repro.capture.engine.run_capture` over the shard's
batch range (heartbeating the lease from the progress callback, reusing
any checkpoint a dead predecessor left behind), fsync-promote the
finished checkpoint NPZ to the shard result, and record ``done``.

Failures are per-shard, never per-worker: a retryable error puts the
shard back to ``pending`` with a capped-exponential ``not_before``
backoff; once the manifest's retry budget is exhausted the shard is
recorded ``failed`` with the reason, and the worker moves on.  The
worker exits when no shard is claimable (all done/failed, or leased by
live peers and the worker has no reason to wait).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from ..config import ReproConfig, get_config
from ..errors import LeaseError, ManifestError
from .manifest import (
    DONE,
    FAILED,
    JobManifest,
    JobPaths,
    LEASED,
    PENDING,
    ShardState,
    effective_state,
    read_shard_state,
    shard_sequence,
    write_shard_state,
)
from .lease import Lease, try_acquire
from .retry import backoff_delay
from .sources import build_source


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation accomplished."""

    worker: str
    shards_done: list[int] = field(default_factory=list)
    shards_failed: list[int] = field(default_factory=list)
    requests_done: int = 0

    def to_jsonable(self) -> dict:
        return {
            "worker": self.worker,
            "shards_done": self.shards_done,
            "shards_failed": self.shards_failed,
            "requests_done": self.requests_done,
        }


def _promote(paths: JobPaths, index: int) -> None:
    """Atomically publish a completed shard checkpoint as the result.

    ``run_capture`` always checkpoints the final batch, so the finished
    checkpoint NPZ *is* the shard result — same statistics, same cursor
    — and an fsync'd rename publishes it without a rewrite.
    """
    from ..capture.engine import fsync_file

    ckpt = paths.checkpoint(index)
    fsync_file(ckpt)
    os.replace(ckpt, paths.result(index))


def run_worker(
    job_dir: str | Path,
    *,
    worker_id: str | None = None,
    config: ReproConfig | None = None,
    max_shards: int | None = None,
    poll: float = 0.5,
    throttle: float = 0.0,
    wait_for_peers: bool = False,
    sleep: Callable[[float], None] = time.sleep,
    now: Callable[[], float] = time.time,
) -> WorkerReport:
    """Claim-and-capture loop over a fleet job directory.

    Args:
        job_dir: directory holding ``manifest.json`` (shared with peers).
        worker_id: stable identity for leases and state records
            (default: ``host:pid``).
        config: local run configuration; the manifest descriptor's seed
            overrides ``config.seed`` inside the rebuilt source.
        max_shards: stop after completing this many shards (tests).
        poll: seconds between scans when every eligible shard is backed
            off but none is terminal yet.
        throttle: extra seconds to sleep after *each batch* — rate-limit
            -aware pacing for acquisition backends that must not hammer
            a target (and the fault-injection tests' kill window).
        wait_for_peers: keep polling while peers hold live leases
            instead of exiting once nothing is claimable.
        sleep / now: injectable clocks for tests.

    Returns:
        A :class:`WorkerReport`; never raises for per-shard failures.
    """
    paths = JobPaths(Path(job_dir))
    manifest = JobManifest.load(paths.root)
    manifest.verify_descriptor()
    if config is None:
        config = get_config()
    source = build_source(manifest.descriptor, config)
    if source.fingerprint() != manifest.fingerprint:
        raise ManifestError(
            "rebuilt capture source does not match the manifest "
            "fingerprint — library version skew between coordinator "
            "and worker?"
        )
    worker = worker_id or f"{os.uname().nodename}:{os.getpid()}"
    report = WorkerReport(worker=worker)
    order = shard_sequence(manifest, worker_seed=os.getpid())

    while True:
        if max_shards is not None and len(report.shards_done) >= max_shards:
            return report
        claimed = False
        busy = False  # saw a shard we might claim later
        for index in order:
            state = effective_state(paths, manifest, index, now=now())
            if state.state in (DONE, FAILED):
                continue
            if state.state == LEASED:
                busy = True
                continue
            if state.not_before > now():
                busy = True
                continue
            if state.attempts >= manifest.retry_budget:
                # A crashed predecessor burned the budget; record the
                # terminal state so the coordinator stops waiting.
                write_shard_state(
                    paths,
                    replace(
                        state,
                        state=FAILED,
                        worker=worker,
                        error=state.error
                        or "retry budget exhausted by crashed workers",
                    ),
                )
                continue
            lease = try_acquire(
                paths.lease(index),
                worker=worker,
                ttl=manifest.lease_ttl,
                attempt=state.attempts + 1,
                now=now(),
            )
            if lease is None:
                busy = True
                continue
            claimed = True
            _run_shard(
                paths,
                manifest,
                source,
                index,
                lease,
                worker,
                report,
                throttle=throttle,
                sleep=sleep,
                now=now,
            )
            break  # rescan from the top of our order
        if claimed:
            continue
        if not busy:
            return report
        if not wait_for_peers and not _has_waitable_work(
            paths, manifest, now=now()
        ):
            return report
        sleep(poll)


def _has_waitable_work(
    paths: JobPaths, manifest: JobManifest, *, now: float
) -> bool:
    """Whether any shard is backed off (worth polling for) vs leased."""
    for shard in manifest.shards:
        state = effective_state(paths, manifest, shard.index, now=now)
        if state.state == PENDING and state.not_before > now:
            if state.attempts < manifest.retry_budget:
                return True
    return False


def _run_shard(
    paths: JobPaths,
    manifest: JobManifest,
    source,
    index: int,
    lease: Lease,
    worker: str,
    report: WorkerReport,
    *,
    throttle: float,
    sleep: Callable[[float], None],
    now: Callable[[], float],
) -> None:
    """Run one leased shard to done/pending/failed and release the lease."""
    from ..capture.engine import run_capture

    spec = manifest.shard(index)
    prior = read_shard_state(paths, index)
    attempt = prior.attempts + 1
    write_shard_state(
        paths,
        replace(prior, state=LEASED, attempts=attempt, worker=worker),
    )
    requests_done = 0

    def on_progress(progress) -> None:
        nonlocal requests_done
        requests_done = progress.requests_done
        lease.heartbeat()  # raises LeaseError when a peer took over
        if throttle > 0.0:
            sleep(throttle)

    try:
        run_capture(
            source,
            batches=spec.batches,
            checkpoint_path=paths.checkpoint(index),
            checkpoint_every=manifest.checkpoint_every,
            progress=on_progress,
            resume=True,
        )
        if not lease.held(manifest.lease_ttl, now=now()):
            # Lost the lease on the very last heartbeat race — the new
            # holder owns the state file now; walk away.
            return
        _promote(paths, index)
        if requests_done == 0:
            # Resumed an already-complete checkpoint: no progress event
            # fired, so read the count from the promoted cursor.
            _, extra = source.load(paths.result(index))
            requests_done = int(extra["capture_checkpoint"]["requests_done"])
        write_shard_state(
            paths,
            ShardState(
                index=index,
                state=DONE,
                attempts=attempt,
                worker=worker,
                requests_done=requests_done,
            ),
        )
        report.shards_done.append(index)
        report.requests_done += requests_done
    except LeaseError:
        # A peer reclaimed the shard; its state file is theirs now.
        return
    except Exception as exc:  # noqa: BLE001 — per-shard fault isolation
        reason = f"{exc.__class__.__name__}: {exc}"
        if attempt >= manifest.retry_budget:
            write_shard_state(
                paths,
                ShardState(
                    index=index,
                    state=FAILED,
                    attempts=attempt,
                    worker=worker,
                    error=reason,
                ),
            )
            report.shards_failed.append(index)
        else:
            delay = backoff_delay(attempt - 1, base=manifest.backoff_base)
            write_shard_state(
                paths,
                ShardState(
                    index=index,
                    state=PENDING,
                    attempts=attempt,
                    not_before=now() + delay,
                    worker=worker,
                    error=reason,
                ),
            )
    finally:
        lease.release()
