"""Shard leases: O_EXCL lockfiles with heartbeat mtimes.

The only mutual exclusion the fleet needs is "at most one *live* worker
per shard", and the only primitives it may assume are the POSIX
guarantees of a shared directory: ``open(O_CREAT|O_EXCL)`` is atomic,
and ``rename`` is atomic.  That keeps the same job directory valid for
one core or a thousand NFS clients.

Protocol:

- **Claim** — create ``shard-N.lease`` with ``O_CREAT | O_EXCL``;
  exactly one creator wins.  The file body records the worker id and
  attempt for post-mortems; its *mtime* is the heartbeat.
- **Heartbeat** — the holder bumps the mtime (``os.utime``) at least
  once per TTL, typically every batch from the ``run_capture`` progress
  callback.
- **Stale takeover** — a lease whose mtime is older than the TTL belongs
  to a dead worker.  A claimant first ``rename``s it to a unique
  tombstone name (exactly one renamer wins; losers see ``ENOENT`` and
  back off), then re-creates the lease with ``O_EXCL`` as its own.
- **Zombie safety** — a paused-not-dead worker may wake up after losing
  its lease and keep writing.  That is *harmless by construction*: shard
  content is a pure function of the manifest descriptor and batch range,
  so whichever writer's atomic rename lands last, the bytes are the
  same; and the state file is only rewritten by the current holder after
  re-verifying it still holds the lease file it created.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import LeaseError


@dataclass
class Lease:
    """A held shard lease.  Heartbeat regularly; release when done."""

    path: Path
    worker: str
    token: str

    def held(self, ttl: float, *, now: float | None = None) -> bool:
        """Whether this worker still plausibly owns the lease.

        True when the lease file exists, still carries our token, and
        has a heartbeat within the TTL.  A False here means a peer
        reclaimed the shard — the worker must abandon it silently.
        """
        try:
            if self.path.read_text().strip() != self.token:
                return False
            age = (now if now is not None else time.time()) - (
                self.path.stat().st_mtime
            )
        except OSError:
            return False
        return age <= ttl

    def heartbeat(self) -> None:
        """Bump the lease mtime; raise :class:`LeaseError` when lost."""
        try:
            if self.path.read_text().strip() != self.token:
                raise LeaseError(
                    f"{self.path} was taken over by another worker"
                )
            os.utime(self.path)
        except OSError as exc:
            raise LeaseError(f"lost lease {self.path}: {exc}") from exc

    def release(self) -> None:
        """Remove the lease file (idempotent; losing a race is fine)."""
        try:
            self.path.unlink()
        except OSError:
            pass


def _write_exclusive(path: Path, body: str) -> bool:
    """Atomically create ``path`` with ``body``; False when it exists."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except OSError as exc:
        if exc.errno == errno.EEXIST:
            return False
        raise
    try:
        os.write(fd, body.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    return True


def try_acquire(
    path: Path,
    *,
    worker: str,
    ttl: float,
    attempt: int,
    now: float | None = None,
) -> Lease | None:
    """Try to claim the lease at ``path``; ``None`` when someone holds it.

    Live lease → back off (return None).  Stale lease → tombstone it via
    unique rename, then create our own.  The token (worker + attempt +
    pid) disambiguates successive leases on the same shard so a zombie's
    :meth:`Lease.heartbeat` cannot refresh a successor's lease.
    """
    token = f"{worker}:attempt{attempt}:pid{os.getpid()}"
    if _write_exclusive(path, token):
        return Lease(path=path, worker=worker, token=token)
    # Lease exists — stale?
    try:
        age = (now if now is not None else time.time()) - path.stat().st_mtime
    except OSError:
        # Holder released (or a peer tombstoned it) between our O_EXCL
        # failure and the stat.  One immediate retry; then back off.
        if _write_exclusive(path, token):
            return Lease(path=path, worker=worker, token=token)
        return None
    if age <= ttl:
        return None
    tombstone = path.with_name(
        f"{path.name}.stale.{worker}.{os.getpid()}.{attempt}"
    )
    try:
        os.rename(path, tombstone)
    except OSError:
        # A peer won the takeover race; let them have it.
        return None
    try:
        tombstone.unlink()
    except OSError:
        pass
    if _write_exclusive(path, token):
        return Lease(path=path, worker=worker, token=token)
    return None
