"""Packet-level Wi-Fi attack simulation: the full §5 pipeline, small N.

Glues the substrates together exactly as the paper's field test ran:
a victim client with a TKIP session, an attacker-controlled TCP server
whose retransmissions the client keeps re-encrypting, a passive sniffer
building per-TSC ciphertext statistics, and the recovery pipeline
(likelihoods -> candidates -> CRC prune -> Michael inversion).

Real RC4, real key mixing, real Michael/CRC — every byte on the
simulated air is produced by the actual protocol stack.  Use the
statistic-level samplers (Fig 8/9 benchmarks) for paper-scale N.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..config import ReproConfig
from ..errors import AttackError
from ..tkip.attack import TkipAttackResult, run_attack
from ..tkip.injection import CaptureSet, InjectionCampaign
from ..tkip.packets import TcpPacketSpec, build_protected_msdu
from ..tkip.per_tsc import PerTscDistributions
from ..tkip.session import TkipSession

VICTIM_MAC = bytes.fromhex("0013d4fe0a11")
AP_MAC = bytes.fromhex("00254b7e33c0")
SERVER_IP = "203.0.113.7"


@dataclass
class WifiAttackSimulation:
    """A complete simulated WPA-TKIP network under attack.

    Args:
        config: run configuration (seeding).
        payload: TCP payload of the injected packet (paper §5.2 uses a
            7-byte payload so the MIC/ICV land on stronger positions and
            the packet length is unique on the air).
    """

    config: ReproConfig
    payload: bytes = b"ATTACK!"

    def __post_init__(self) -> None:
        rng = self.config.rng("wifi-sim")
        self.victim = TkipSession.random(rng, VICTIM_MAC)
        self.spec = TcpPacketSpec(
            source_ip="192.168.1.101",
            dest_ip=SERVER_IP,
            source_port=51324,
            dest_port=80,
            payload=self.payload,
        )
        self.campaign = InjectionCampaign(
            session=self.victim, spec=self.spec, da=AP_MAC, sa=VICTIM_MAC
        )

    @property
    def true_plaintext(self) -> bytes:
        """Ground truth (data || MIC || ICV) for success accounting."""
        return build_protected_msdu(
            self.spec, self.victim.mic_key, AP_MAC, VICTIM_MAC
        )

    def capture(self, num_packets: int) -> CaptureSet:
        """Run the injection campaign and sniff every transmission."""
        return self.campaign.run(num_packets)

    def capture_source(
        self,
        tsc_values: list[int],
        packets_per_tsc: int,
        *,
        batch_size: int = 4096,
    ):
        """The deterministic batched source behind :meth:`batched_capture`.

        Exposed separately so the fleet coordinator can expand it into a
        shard manifest (``distributed=N`` runs).
        """
        from ..capture import TkipCaptureSource

        return TkipCaptureSource(
            config=self.config,
            plaintext=self.true_plaintext,
            tsc_values=tuple(tsc_values),
            packets_per_tsc=packets_per_tsc,
            batch_size=batch_size,
            label="tkip-capture",
        )

    def batched_capture(
        self,
        tsc_values: list[int],
        packets_per_tsc: int,
        *,
        batch_size: int = 4096,
        checkpoint_path=None,
        checkpoint_every: int = 16,
        progress=None,
    ) -> CaptureSet:
        """Keystream-level capture on the batched engine.

        Real RC4 keystreams under the §2.2 key model (public TSC bytes +
        uniform tail) XOR the true plaintext, counted by the vectorized
        kernels — the statistic-level equivalent of running the
        injection campaign for ``packets_per_tsc`` packets at each TSC,
        without the per-frame Python loop.  Checkpoints make long
        captures resumable (see :func:`repro.capture.run_capture`).
        """
        from ..capture import run_capture

        return run_capture(
            self.capture_source(
                tsc_values, packets_per_tsc, batch_size=batch_size
            ),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            progress=progress,
        )

    def attack(
        self,
        capture: CaptureSet,
        per_tsc: PerTscDistributions,
        *,
        max_candidates: int = 1 << 20,
    ) -> TkipAttackResult:
        """Recover MIC+ICV and derive the MIC key; verifies against truth."""
        known = self.spec.msdu_data()
        truth = self.true_plaintext
        true_mic = truth[len(known) : len(known) + 8]
        result = run_attack(
            capture,
            per_tsc,
            known,
            AP_MAC,
            VICTIM_MAC,
            max_candidates=max_candidates,
            true_mic=true_mic,
        )
        if result.correct and result.mic_key != self.victim.mic_key:
            raise AttackError("recovered MIC key differs despite correct MIC")
        return result

    def forge_frame(self, mic_key: bytes, payload: bytes):
        """Demonstrate the §2.2 consequence: with the MIC key an attacker
        injects a packet the victim's stack accepts."""
        spec = TcpPacketSpec(
            source_ip=SERVER_IP,
            dest_ip="192.168.1.101",
            source_port=80,
            dest_port=51324,
            payload=payload,
        )
        attacker = TkipSession(
            tk=self.victim.tk,  # for the demo frame we reuse the session key;
            mic_key=mic_key,  # the forged MIC is what the attack recovered
            ta=VICTIM_MAC,
            tsc=self.victim.tsc,
        )
        return attacker.encapsulate(spec.msdu_data(), AP_MAC, VICTIM_MAC)
