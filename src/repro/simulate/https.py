"""Packet-level HTTPS attack simulation: the full §6 pipeline, small N.

A victim browser holds a secure cookie for the target site; the attacker
(a) manipulates the cookie jar over plain HTTP, (b) drives background
HTTPS requests via injected JavaScript, (c) sniffs the encrypted records,
and (d) runs the combined-bias recovery plus brute force.  Every byte is
produced by the real record layer (PRF-derived keys, HMAC-SHA1, RC4).

The statistic-level path (:meth:`HttpsAttackSimulation.sampled_statistics`)
produces the identical sufficient statistics at paper scale by sampling
the model-induced multinomials; benchmarks use it for Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..biases.fluhrer_mcgrew import fm_digraph_distribution, position_to_counter
from ..config import ReproConfig
from ..errors import AttackError
from ..tls.attack import (
    CookieAttackResult,
    CookieLayout,
    CookieStatistics,
    run_attack,
)
from ..tls.bruteforce import BruteForceOracle, CandidatePruner
from ..tls.cookies import charset as charset_by_name
from ..tls.cookies import random_cookie
from ..tls.http import CookieJar, browser_profile
from ..tls.mitm import MitmCampaign
from .sampling import sample_absab_differential_counts, sample_digraph_counts

TARGET_HOST = "site.com"
TARGET_COOKIE = "auth"


@dataclass
class HttpsAttackSimulation:
    """A complete simulated HTTPS victim under the §6 attack.

    Args:
        config: run configuration (seeding).
        cookie_len: length of the secret cookie (paper attacks 16 chars).
        max_gap: ABSAB gap cap (paper uses 128).
        browser: victim client profile (see
            :data:`repro.tls.http.BROWSER_PROFILES`); picks the sniffed
            header block — hence the cookie's keystream offset — and the
            cookie alphabet the simulated site issues to that client.
            ``generic`` is the paper's Listing-3 layout and keeps every
            byte identical to earlier releases.
        charset: named cookie alphabet override (see
            :data:`repro.tls.cookies.CHARSETS`); ``None`` keeps the
            browser profile's default.  Campaign populations vary this
            axis independently of the browser layout.
    """

    config: ReproConfig
    cookie_len: int = 16
    max_gap: int = 128
    browser: str = "generic"
    charset: str | None = None

    def __post_init__(self) -> None:
        self.profile = browser_profile(self.browser)
        if self.charset is None:
            self.cookie_charset = self.profile.cookie_charset
        else:
            self.cookie_charset = charset_by_name(self.charset)
        rng = self.config.rng("https-sim", "cookie")
        secret = random_cookie(
            rng, self.cookie_len, charset=self.cookie_charset
        )
        jar = CookieJar()
        jar.set_cookie("tracking", b"abcdef0123")
        jar.set_cookie(TARGET_COOKIE, secret, secure=True)
        jar.set_cookie("prefs", b"lang-en")
        self.campaign = MitmCampaign.prepare(
            jar, TARGET_COOKIE, TARGET_HOST, headers=self.profile.headers
        )
        self.secret = secret
        self.layout = CookieLayout.from_template(
            self.campaign.template, self.cookie_len
        )

    def capture_statistics(self, num_requests: int) -> CookieStatistics:
        """Packet-level capture: real TLS traffic, sniffed and counted."""
        rng = self.config.rng("https-sim", "traffic")
        sniffer = self.campaign.run(num_requests, rng)
        stats = CookieStatistics.empty(self.layout, max_gap=self.max_gap)
        stats.ingest_sniffer(sniffer)
        return stats

    def batched_statistics(
        self,
        num_requests: int,
        *,
        batch_size: int = 4096,
        reconnect_every: int = 1,
        checkpoint_path=None,
        checkpoint_every: int = 16,
        progress=None,
    ) -> CookieStatistics:
        """Keystream-level capture on the batched engine.

        Statistically faithful middle fidelity: real RC4 keystreams XOR
        the real plaintext template, counted by the vectorized kernels
        (bit-identical to per-request :meth:`CookieStatistics
        .ingest_fragment` over the same ciphertexts — the capture
        equivalence suite holds the two paths together).
        ``reconnect_every`` requests share each connection's keystream
        (1 = fresh connection per request, the Fig 10 record-churn
        regime); checkpoints make long captures resumable (see
        :func:`repro.capture.run_capture`).
        """
        from ..capture import run_capture

        return run_capture(
            self.capture_source(
                num_requests,
                batch_size=batch_size,
                reconnect_every=reconnect_every,
            ),
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            progress=progress,
        )

    def capture_source(
        self,
        num_requests: int,
        *,
        batch_size: int = 4096,
        reconnect_every: int = 1,
    ):
        """The deterministic batched source behind :meth:`batched_statistics`.

        Exposed separately so the fleet coordinator can expand it into a
        shard manifest (``distributed=N`` runs).
        """
        from ..capture import HttpsCaptureSource

        return HttpsCaptureSource(
            config=self.config,
            layout=self.layout,
            plaintext=self.campaign.request_plaintext(),
            num_requests=num_requests,
            batch_size=batch_size,
            reconnect_every=reconnect_every,
            max_gap=self.max_gap,
            label=f"https-capture/{self.browser}",
        )

    def sampled_statistics(
        self, num_requests: int, *, method: str = "multinomial"
    ) -> CookieStatistics:
        """Statistic-level capture (exact distributional equivalent).

        For every transition digraph, draw the ciphertext digraph counts
        from the Fluhrer–McGrew model; for every ABSAB alignment, draw
        differential counts from the alpha(g) model.  The likelihood
        estimators consume only these count vectors, so sampling them
        from the model-induced multinomials is distribution-exact — it
        matches a real capture of ``num_requests`` requests (see the
        :mod:`repro.simulate` package docstring).
        """
        layout = self.layout
        plaintext = self.campaign.request_plaintext()
        stats = CookieStatistics.empty(layout, max_gap=self.max_gap)
        stats.num_requests = num_requests
        rng = self.config.rng("https-sim", "sampled", num_requests)

        def pbyte(position: int) -> int:
            return plaintext[position - layout.base_offset]

        transitions = layout.transitions()
        for t, r in enumerate(transitions):
            dist = fm_digraph_distribution(position_to_counter(r))
            stats.fm_counts[t] = sample_digraph_counts(
                dist, num_requests, (pbyte(r), pbyte(r + 1)), seed=rng, method=method
            )
        for (t, gap, side), counts in stats.absab_counts.items():
            r = transitions[t]
            if side == "after":
                partner = (pbyte(r + 2 + gap), pbyte(r + 3 + gap))
            else:
                partner = (pbyte(r - 2 - gap), pbyte(r - 1 - gap))
            diff = (pbyte(r) ^ partner[0], pbyte(r + 1) ^ partner[1])
            counts[:] = sample_absab_differential_counts(
                gap, num_requests, diff, seed=rng, method=method
            )
        return stats

    def attack(
        self, stats: CookieStatistics, *, num_candidates: int = 1 << 13
    ) -> CookieAttackResult:
        """Candidate generation + brute force; verifies against truth.

        Algorithm 2 enumerates over the alphabet the layout metadata
        declares (the §6.2 RFC 6265 restriction, tightened further for
        framework-token scenarios), and the layout-aware pruner guards
        the oracle against candidates a broader pipeline could emit —
        a no-op when generation already honours the layout.
        """
        oracle = BruteForceOracle(self.secret)
        pruner = CandidatePruner.for_layout(
            self.layout, self.cookie_charset
        )
        result = run_attack(
            stats,
            oracle,
            num_candidates=num_candidates,
            charset=self.cookie_charset,
            pruner=pruner,
        )
        if result.cookie != self.secret:
            raise AttackError("oracle accepted a wrong cookie (impossible)")
        return result
