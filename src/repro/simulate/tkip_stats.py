"""Statistic-level TKIP capture sampling (Fig 8/9 methodology).

The TKIP attack consumes per-TSC ciphertext byte counts.  Under the
per-TSC keystream model those counts are multinomial (cell probability =
keystream distribution XOR-shifted by the fixed plaintext byte), so
sampling them directly is equivalent to capturing that many packets —
the methodology behind the paper's (and Paterson et al.'s) simulated
success-rate figures.

Two fidelity modes, both exposed by the benchmarks:

- ``nature == attacker`` (paper methodology): ciphertexts are sampled
  from the same empirical distributions the attack uses.  This isolates
  the *recovery machinery* from distribution-estimation noise — exactly
  what Fig 8 plots.
- ``nature != attacker``: nature uses an independently measured
  distribution set, so the attacker's estimation noise degrades recovery
  realistically.  At this reproduction's affordable keys-per-TSC the
  estimation noise at the MIC/ICV positions is substantial (the paper
  spent 10 CPU-years here; see :mod:`repro.tkip.per_tsc`), which shifts
  curves right but preserves their shape.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..tkip.injection import CaptureSet
from ..tkip.per_tsc import PerTscDistributions
from .sampling import Method, _draw, _rng_from

_BYTE = np.arange(256)


def sampled_capture(
    per_tsc: PerTscDistributions,
    plaintext: bytes,
    positions: range,
    packets_per_tsc: int,
    *,
    seed: int | np.random.Generator | None = None,
    method: Method = "multinomial",
) -> CaptureSet:
    """Sample a :class:`CaptureSet` equivalent to a uniform-TSC campaign.

    Args:
        per_tsc: "nature's" per-TSC keystream distributions.
        plaintext: the injected packet's protected plaintext
            (data || MIC || ICV) — ground truth the simulation encrypts.
        positions: keystream positions to expose in the capture.
        packets_per_tsc: packets captured at each covered TSC value.

    Returns:
        A capture whose counts are exactly distributed as a real capture
        of ``packets_per_tsc * len(per_tsc.tsc_values)`` packets.
    """
    if packets_per_tsc <= 0:
        raise DistributionError(
            f"packets_per_tsc must be positive, got {packets_per_tsc}"
        )
    for pos in positions:
        if pos > len(plaintext) or pos > per_tsc.length:
            raise DistributionError(
                f"position {pos} beyond plaintext ({len(plaintext)}) or "
                f"distributions ({per_tsc.length})"
            )
    rng = _rng_from(seed)
    capture = CaptureSet(positions=positions, plaintext_len=len(plaintext))
    for t, tsc in enumerate(per_tsc.tsc_values):
        dists = per_tsc.dists[t]
        table = np.zeros((len(positions), 256), dtype=np.int64)
        for row, pos in enumerate(positions):
            cipher_probs = dists[pos - 1][_BYTE ^ plaintext[pos - 1]]
            # Guard against smoothing round-off before the multinomial.
            cipher_probs = cipher_probs / cipher_probs.sum()
            table[row] = _draw(cipher_probs, packets_per_tsc, rng, method)
        capture.counts[tsc] = table
        capture.num_captured += packets_per_tsc
    return capture
