"""Exact sampling of attack sufficient statistics (documented substitution).

All likelihood estimators in :mod:`repro.core` consume *count vectors*:

- single-byte: N_c = #ciphertexts with byte value c at a position;
- digraph: N_{c1,c2} over consecutive ciphertext pairs;
- ABSAB: counts of ciphertext differentials.

Under the keystream model p and a fixed plaintext, those counts are
multinomial with cell probabilities equal to p shifted (XOR) by the
plaintext.  Sampling the multinomial directly is therefore *exactly*
equivalent to generating N ciphertexts and counting — but costs O(cells)
instead of O(N).  A Poisson approximation is offered for the very largest
N (cell counts are huge and independent-Poisson converges); benchmarks
default to the exact multinomial.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import DistributionError

Method = Literal["multinomial", "poisson"]


def _rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _draw(
    probs: np.ndarray, n: int, rng: np.random.Generator, method: Method
) -> np.ndarray:
    if method == "multinomial":
        return rng.multinomial(n, probs)
    if method == "poisson":
        return rng.poisson(n * probs)
    raise DistributionError(f"unknown sampling method {method!r}")


def sample_single_byte_counts(
    keystream_dist: np.ndarray,
    n: int,
    plaintext: int,
    *,
    seed: int | np.random.Generator | None = None,
    method: Method = "multinomial",
) -> np.ndarray:
    """Ciphertext byte counts for n encryptions of one plaintext byte.

    Cell c of the result counts ciphertexts with value c; its probability
    is ``keystream_dist[c ^ plaintext]``.
    """
    dist = np.asarray(keystream_dist, dtype=np.float64)
    if dist.shape != (256,):
        raise DistributionError(f"keystream_dist must be length 256, got {dist.shape}")
    if not 0 <= plaintext < 256:
        raise DistributionError(f"plaintext byte out of range: {plaintext}")
    rng = _rng_from(seed)
    cipher_probs = dist[np.arange(256) ^ plaintext]
    return _draw(cipher_probs, n, rng, method)


def sample_digraph_counts(
    keystream_dist: np.ndarray,
    n: int,
    plaintext_pair: tuple[int, int],
    *,
    seed: int | np.random.Generator | None = None,
    method: Method = "multinomial",
) -> np.ndarray:
    """Ciphertext digraph counts for n encryptions of a plaintext pair.

    Args:
        keystream_dist: (256, 256) keystream digraph distribution.
        n: number of ciphertexts.
        plaintext_pair: the fixed plaintext bytes (mu1, mu2).

    Returns:
        int64 (256, 256); cell (c1, c2) counts that ciphertext pair.
    """
    dist = np.asarray(keystream_dist, dtype=np.float64)
    if dist.shape != (256, 256):
        raise DistributionError(f"keystream_dist must be (256, 256), got {dist.shape}")
    mu1, mu2 = plaintext_pair
    if not (0 <= mu1 < 256 and 0 <= mu2 < 256):
        raise DistributionError(f"plaintext pair out of range: {plaintext_pair}")
    rng = _rng_from(seed)
    idx = np.arange(256)
    cipher_probs = dist[np.ix_(idx ^ mu1, idx ^ mu2)].reshape(-1)
    return _draw(cipher_probs, n, rng, method).reshape(256, 256)


def sample_absab_differential_counts(
    gap: int,
    n: int,
    plaintext_differential: tuple[int, int],
    *,
    seed: int | np.random.Generator | None = None,
    method: Method = "multinomial",
) -> np.ndarray:
    """Ciphertext differential counts under the ABSAB model (paper eq 19).

    The keystream differential is (0,0) with probability alpha(g) and
    uniform otherwise; the ciphertext differential equals the keystream
    differential XOR the plaintext differential.

    Args:
        gap: ABSAB gap g.
        n: number of ciphertexts.
        plaintext_differential: the true plaintext differential
            (unknown XOR known bytes), which is where the biased cell
            lands in ciphertext space.

    Returns:
        int64 length-65536 vector of differential counts.
    """
    from ..biases.mantin_absab import absab_alpha

    d1, d2 = plaintext_differential
    if not (0 <= d1 < 256 and 0 <= d2 < 256):
        raise DistributionError(
            f"plaintext differential out of range: {plaintext_differential}"
        )
    rng = _rng_from(seed)
    alpha = absab_alpha(gap)
    probs = np.full(65536, (1.0 - alpha) / 65535, dtype=np.float64)
    probs[(d1 << 8) | d2] = alpha
    return _draw(probs, n, rng, method)
