"""Wall-clock models for the two attacks (paper §5.4 and §6.3).

The paper's practicality claims are rate arithmetic:

- TKIP: ~2500 injected packets/second, ~9.5 * 2**20 captures in about an
  hour, MIC key valid as long as the PTK is not renewed (and renewals
  are typically hourly or absent, §2.2);
- TLS: ~4450 requests/second gives 9 * 2**27 ciphertexts in ~75 hours;
  >20000 brute-force tests/second covers 2**23 candidates in <7 minutes.

:class:`AttackTimeline` reproduces those derived quantities from the
same inputs so the benchmarks can print the paper's numbers next to
this reproduction's scaled ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tkip.injection import PAPER_INJECTION_RATE
from ..tls.bruteforce import PAPER_TEST_RATE
from ..tls.mitm import PAPER_REQUEST_RATE


@dataclass(frozen=True)
class AttackTimeline:
    """Derived wall-clock timeline of a capture-then-search attack.

    Attributes:
        samples: ciphertexts (packets or requests) to capture.
        capture_rate: samples per second.
        search_candidates: candidates to test after capture.
        search_rate: candidate tests per second.
    """

    samples: int
    capture_rate: float
    search_candidates: int = 0
    search_rate: float = PAPER_TEST_RATE

    @property
    def capture_seconds(self) -> float:
        return self.samples / self.capture_rate

    @property
    def capture_hours(self) -> float:
        return self.capture_seconds / 3600.0

    @property
    def search_seconds(self) -> float:
        if self.search_candidates == 0:
            return 0.0
        return self.search_candidates / self.search_rate

    @property
    def total_hours(self) -> float:
        return (self.capture_seconds + self.search_seconds) / 3600.0


def tkip_timeline(
    num_captures: int = int(9.5 * 2**20),
    *,
    rate_pps: float = PAPER_INJECTION_RATE,
) -> AttackTimeline:
    """The §5.4 timeline: with the paper's defaults this is ~1.1 hours —
    within the window before a typical hourly PTK rekey."""
    return AttackTimeline(samples=num_captures, capture_rate=rate_pps)


def tls_timeline(
    num_requests: int = 9 * 2**27,
    *,
    request_rate: float = PAPER_REQUEST_RATE,
    candidates: int = 1 << 23,
    test_rate: float = PAPER_TEST_RATE,
) -> AttackTimeline:
    """The §6.3 timeline: with the paper's defaults, ~75 hours of traffic
    plus <7 minutes of brute force."""
    return AttackTimeline(
        samples=num_requests,
        capture_rate=request_rate,
        search_candidates=candidates,
        search_rate=test_rate,
    )
