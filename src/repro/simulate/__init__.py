"""Traffic/capture simulators and sufficient-statistic samplers.

Two fidelity levels, both exercising the identical attack code:

- **packet level** — real RC4, real protocol stacks, small N
  (:mod:`repro.simulate.wifi`, :mod:`repro.simulate.https` glue the
  substrates together);
- **statistic level** — the likelihood estimators consume only *count
  vectors*; sampling those counts directly from the model-induced
  multinomial is statistically exact and reaches the paper's ciphertext
  scales (:mod:`repro.simulate.sampling`).  This is how the paper's own
  simulation figures (7, 8, 10) must have been produced — 2048 trials at
  2**39 ciphertexts cannot be generated cipher-by-cipher either.

:mod:`repro.simulate.timing` converts packet/request counts into
wall-clock durations using the rates the paper measured.
"""

from .sampling import (
    sample_absab_differential_counts,
    sample_digraph_counts,
    sample_single_byte_counts,
)
from .tkip_stats import sampled_capture
from .timing import (
    AttackTimeline,
    tkip_timeline,
    tls_timeline,
)
from .wifi import WifiAttackSimulation
from .https import HttpsAttackSimulation


def sample_single_byte_counts_simple(dist, n, plaintext, seed):
    """Backward-compatible alias used by the README quickstart."""
    return sample_single_byte_counts(dist, n, plaintext, seed=seed)


__all__ = [
    "AttackTimeline",
    "HttpsAttackSimulation",
    "WifiAttackSimulation",
    "sample_absab_differential_counts",
    "sample_digraph_counts",
    "sample_single_byte_counts",
    "sampled_capture",
    "tkip_timeline",
    "tls_timeline",
]
