"""Long-term biases at multiples of 256 (paper §2.1.2 and §3.4).

Sen Gupta et al. found ``Pr[(Z_{256w}, Z_{256w+2}) = (0, 0)] =
2^-16 (1 + 2^-8)`` for w >= 1; the paper's new result (eq 8) is that the
pair (128, 0) is biased identically at the same positions.  The paper
also reports (eq 9) weak equality dependencies ``Pr[Z_{256w+a} =
Z_{256w+b}]`` with relative bias ~2^-16 whose sign pattern it leaves as
future work; we expose the magnitude for power calculations only.
"""

from __future__ import annotations

import numpy as np

from .model import PairBias, paper_prob

#: Sen Gupta et al.: (Z_{w256}, Z_{w256+2}) = (0, 0), gap-1 digraph.
SENGUPTA_00 = PairBias(
    positions=(256, 258),
    values=(0, 0),
    probability=paper_prob(-16, -8, +1),
    baseline=2.0**-16,
    source="Sen Gupta et al. (w*256 positions)",
)

#: Paper eq 8 (new): (Z_{w256}, Z_{w256+2}) = (128, 0) with the same bias.
NEW_128_0 = PairBias(
    positions=(256, 258),
    values=(128, 0),
    probability=paper_prob(-16, -8, +1),
    baseline=2.0**-16,
    source="paper eq 8 (new long-term bias)",
)

#: Paper eq 9: |relative bias| of Pr[Z_{256w+a} = Z_{256w+b}] equalities.
EQ9_RELATIVE_BIAS = 2.0**-16

W256_PAIR_BIASES: tuple[PairBias, ...] = (SENGUPTA_00, NEW_128_0)


def w256_gap1_distribution() -> np.ndarray:
    """Distribution of (Z_{w256}, Z_{w256+2}) — the gap-1 digraph at
    multiples of 256, containing both the Sen Gupta (0,0) cell and the
    paper's new (128,0) cell."""
    dist = np.empty((256, 256), dtype=np.float64)
    biased = {(0, 0): SENGUPTA_00.probability, (128, 0): NEW_128_0.probability}
    mass = sum(biased.values())
    dist.fill((1.0 - mass) / (65536 - len(biased)))
    for (a, b), p in biased.items():
        dist[a, b] = p
    return dist
