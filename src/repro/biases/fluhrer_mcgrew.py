"""Generalized Fluhrer–McGrew digraph biases (paper Table 1, §2.1.2, §3.3.1).

Fluhrer & McGrew found that certain consecutive keystream byte pairs
(digraphs) deviate from uniform throughout the whole keystream, with the
deviation depending on the PRGA's public counter ``i`` — the value of
``i`` *at the time the first byte of the digraph is produced*, i.e.
``i = r mod 256`` for a digraph starting at 1-indexed position r.

The paper's Table 1 generalises the original list with conditions on the
absolute position r: a few digraphs do not hold (or hold differently) for
small r.  This module encodes all 12 rows and can build the full 256x256
digraph probability matrix for any i, which is the model consumed by the
likelihood machinery (eq 15) and by the sufficient-statistic samplers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .model import paper_prob

#: Long-term relative magnitudes from Table 1.
_P_PLUS_7 = paper_prob(-16, -7, +1)
_P_PLUS_8 = paper_prob(-16, -8, +1)
_P_MINUS_8 = paper_prob(-16, -8, -1)


@dataclass(frozen=True)
class FmRule:
    """One row of Table 1.

    Attributes:
        name: human-readable digraph label as printed in the paper.
        values: function of i returning the (first, second) byte values.
        condition: predicate on (i, r) deciding whether the rule applies;
            ``r`` may be None meaning "long-term position" (all the
            r-conditions of Table 1 are then satisfied).
        probability: the long-term digraph probability.
    """

    name: str
    values: Callable[[int], tuple[int, int]]
    condition: Callable[[int, int | None], bool]
    probability: float

    def applies(self, i: int, r: int | None = None) -> bool:
        return self.condition(i & 0xFF, r)

    def cell(self, i: int) -> tuple[int, int]:
        first, second = self.values(i & 0xFF)
        return first & 0xFF, second & 0xFF


def _rule(name, values, condition, probability) -> FmRule:
    return FmRule(
        name=name, values=values, condition=condition, probability=probability
    )


#: All 12 rows of Table 1.  ``r`` is the 1-indexed position of the first
#: digraph byte; ``r is None`` means "deep in the keystream".
FM_RULES: tuple[FmRule, ...] = (
    _rule("(0,0) i=1", lambda i: (0, 0), lambda i, r: i == 1, _P_PLUS_7),
    _rule(
        "(0,0) i!=1,255",
        lambda i: (0, 0),
        lambda i, r: i not in (1, 255),
        _P_PLUS_8,
    ),
    _rule(
        "(0,1) i!=0,1",
        lambda i: (0, 1),
        lambda i, r: i not in (0, 1),
        _P_PLUS_8,
    ),
    _rule(
        "(0,i+1) i!=0,255",
        lambda i: (0, i + 1),
        lambda i, r: i not in (0, 255),
        _P_MINUS_8,
    ),
    _rule(
        "(i+1,255) i!=254",
        lambda i: (i + 1, 255),
        lambda i, r: i != 254 and (r is None or r != 1),
        _P_PLUS_8,
    ),
    _rule(
        "(129,129) i=2",
        lambda i: (129, 129),
        lambda i, r: i == 2 and (r is None or r != 2),
        _P_PLUS_8,
    ),
    _rule(
        "(255,i+1) i!=1,254",
        lambda i: (255, i + 1),
        lambda i, r: i not in (1, 254),
        _P_PLUS_8,
    ),
    _rule(
        "(255,i+2) i in [1,252]",
        lambda i: (255, i + 2),
        lambda i, r: 1 <= i <= 252 and (r is None or r != 2),
        _P_PLUS_8,
    ),
    _rule("(255,0) i=254", lambda i: (255, 0), lambda i, r: i == 254, _P_PLUS_8),
    _rule("(255,1) i=255", lambda i: (255, 1), lambda i, r: i == 255, _P_PLUS_8),
    _rule("(255,2) i=0,1", lambda i: (255, 2), lambda i, r: i in (0, 1), _P_PLUS_8),
    _rule(
        "(255,255) i!=254",
        lambda i: (255, 255),
        lambda i, r: i != 254 and (r is None or r != 5),
        _P_MINUS_8,
    ),
)


def fm_biased_cells(
    i: int, r: int | None = None
) -> list[tuple[tuple[int, int], float]]:
    """The biased digraph cells and probabilities for public counter ``i``.

    Args:
        i: PRGA public counter when the first digraph byte is output.
        r: optional absolute 1-indexed position (activates Table 1's
            short-term exceptions); None means long-term.

    Returns:
        List of ``((first, second), probability)``; cells are unique
        (Table 1's rows never collide for a single i).
    """
    cells: dict[tuple[int, int], float] = {}
    for rule in FM_RULES:
        if rule.applies(i, r):
            cell = rule.cell(i)
            if cell in cells:
                raise AssertionError(f"Table 1 rows collide at i={i}: {cell}")
            cells[cell] = rule.probability
    return list(cells.items())


def position_to_counter(r: int) -> int:
    """Map a 1-indexed keystream position to the PRGA counter i.

    The PRGA increments i before producing a byte, so Z_r is output with
    ``i = r mod 256``.
    """
    if r < 1:
        raise ValueError(f"positions are 1-indexed, got {r}")
    return r % 256


def fm_digraph_distribution(i: int, r: int | None = None) -> np.ndarray:
    """Full 256x256 digraph distribution for public counter ``i``.

    Biased cells take their Table 1 probabilities; the remaining mass is
    spread uniformly over the other cells — exactly the model the paper
    optimises likelihood computations around (the independent/uniform set
    I of eq 14).
    """
    dist = np.empty((256, 256), dtype=np.float64)
    cells = fm_biased_cells(i, r)
    biased_mass = sum(p for _, p in cells)
    n_biased = len(cells)
    dist.fill((1.0 - biased_mass) / (65536 - n_biased))
    for (first, second), p in cells:
        dist[first, second] = p
    return dist


def fm_distributions_for_positions(
    positions: range | list[int], *, short_term: bool = False
) -> dict[int, np.ndarray]:
    """Digraph distributions keyed by 1-indexed start position r.

    With ``short_term=True`` Table 1's r-conditions are applied (paper
    §3.3.1 found the FM biases hold in the initial bytes too, with
    exceptions at r = 1, 2, 5).
    """
    return {
        r: fm_digraph_distribution(position_to_counter(r), r if short_term else None)
        for r in positions
    }
