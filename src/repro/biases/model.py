"""Dataclasses describing keystream biases and the paper's notation.

The paper reports probabilities in the form ``2^a (1 ± 2^b)`` where
``2^a`` is a baseline (uniform, or the single-byte-expected probability
of a pair) and ``2^b`` the relative bias.  :func:`paper_prob` mirrors that
notation so catalog entries read like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass


def paper_prob(base_exp: float, rel_exp: float | None = None, sign: int = 1) -> float:
    """Evaluate the paper's ``2^base_exp (1 ± 2^rel_exp)`` notation.

    Args:
        base_exp: exponent of the baseline probability (e.g. -16).
        rel_exp: exponent of the relative bias (e.g. -8); None for no bias.
        sign: +1 for a positive bias, -1 for a negative bias.
    """
    base = 2.0**base_exp
    if rel_exp is None:
        return base
    if sign not in (-1, 1):
        raise ValueError(f"sign must be +1 or -1, got {sign}")
    return base * (1.0 + sign * 2.0**rel_exp)


@dataclass(frozen=True)
class SingleByteBias:
    """A bias of one keystream byte toward one value (paper §2.1.1, §3.3.3).

    Attributes:
        position: 1-indexed keystream position r of Z_r.
        value: the biased byte value.
        probability: absolute probability if the paper states one, else None.
        relative_bias: q such that Pr = 2^-8 (1 + q), if known.
        source: citation/short label.
        approximate: True when the magnitude is a documented approximation
            rather than a paper-stated value.
    """

    position: int
    value: int
    probability: float | None
    relative_bias: float | None
    source: str
    approximate: bool = False

    @property
    def is_positive(self) -> bool:
        if self.relative_bias is not None:
            return self.relative_bias > 0
        if self.probability is not None:
            return self.probability > 1.0 / 256.0
        raise ValueError("bias has neither probability nor relative bias")


@dataclass(frozen=True)
class PairBias:
    """A bias of a pair (Z_a, Z_b) toward a value pair (paper Table 2).

    ``baseline`` is the single-byte-expected probability (product of the
    marginals) — the reference point of the paper's relative-bias plots.
    """

    positions: tuple[int, int]
    values: tuple[int, int]
    probability: float
    baseline: float
    source: str

    @property
    def relative_bias(self) -> float:
        """The q of ``s = p (1 + q)`` (paper §3.1)."""
        return self.probability / self.baseline - 1.0

    @property
    def is_positive(self) -> bool:
        return self.relative_bias > 0


@dataclass(frozen=True)
class EqualityBias:
    """A bias of the event Z_a == Z_b (paper eqs 3-5, §3.4 eq 9)."""

    positions: tuple[int, int]
    probability: float
    source: str

    @property
    def relative_bias(self) -> float:
        return self.probability * 256.0 - 1.0
