"""Empirical keystream distributions measured with the batch generator.

The paper's likelihood attacks consume *measured* keystream distributions
(paper §4.1: "These can be obtained by following the steps in Sect. 3.2").
This module measures them at configurable scale and smooths the counts
into probability vectors.  Laplace smoothing keeps zero cells strictly
positive so log-likelihoods stay finite at small sample sizes.
"""

from __future__ import annotations

import numpy as np

from ..config import ReproConfig
from ..errors import DistributionError
from ..rc4.batch import BatchRC4
from ..rc4.keygen import derive_keys


def counts_to_distribution(counts: np.ndarray, *, smoothing: float = 1.0) -> np.ndarray:
    """Convert counts to a probability vector with Laplace smoothing.

    Args:
        counts: non-negative counts over the last axis.
        smoothing: pseudo-count added to every cell (0 disables).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if np.any(counts < 0):
        raise DistributionError("counts must be non-negative")
    smoothed = counts + smoothing
    totals = smoothed.sum(axis=-1, keepdims=True)
    if np.any(totals <= 0):
        raise DistributionError("cannot normalise an all-zero count vector")
    return smoothed / totals


def measure_single_byte(
    config: ReproConfig,
    positions: int,
    num_keys: int,
    *,
    keylen: int = 16,
    label: str = "single-byte",
    chunk: int = 1 << 14,
) -> np.ndarray:
    """Measure Pr[Z_r = k] for r = 1..positions over ``num_keys`` keys.

    Returns:
        float64 array of shape (positions, 256); row r-1 is the smoothed
        distribution of Z_r.
    """
    counts = np.zeros((positions, 256), dtype=np.int64)
    remaining = num_keys
    part = 0
    while remaining > 0:
        take = min(chunk, remaining)
        keys = derive_keys(config, f"{label}/{part}", take, keylen=keylen)
        batch = BatchRC4(keys)
        rows = batch.keystream_rows(positions)
        for r in range(positions):
            counts[r] += np.bincount(rows[r], minlength=256)
        remaining -= take
        part += 1
    return counts_to_distribution(counts)


def measure_digraph(
    config: ReproConfig,
    position: int,
    num_keys: int,
    *,
    gap: int = 0,
    keylen: int = 16,
    label: str = "digraph",
    chunk: int = 1 << 14,
) -> np.ndarray:
    """Measure the joint distribution of (Z_r, Z_{r+1+gap}) at r=position.

    Returns:
        float64 array of shape (256, 256), smoothed.
    """
    if position < 1:
        raise ValueError(f"positions are 1-indexed, got {position}")
    length = position + 1 + gap
    counts = np.zeros(65536, dtype=np.int64)
    remaining = num_keys
    part = 0
    while remaining > 0:
        take = min(chunk, remaining)
        keys = derive_keys(config, f"{label}/{part}", take, keylen=keylen)
        batch = BatchRC4(keys)
        rows = batch.keystream_rows(length)
        first = rows[position - 1].astype(np.int32)
        second = rows[position + gap].astype(np.int32)
        counts += np.bincount((first << 8) | second, minlength=65536)
        remaining -= take
        part += 1
    return counts_to_distribution(counts.reshape(1, -1))[0].reshape(256, 256)
