"""Mantin's ABSAB digraph-repetition bias (paper §2.1.2 eq 1, §4.2).

Mantin observed that a digraph AB tends to recur after a short gap S:
the pattern ABSAB.  Writing g = |S| for the gap length, the bias is

    Pr[(Z_r, Z_{r+1}) = (Z_{r+g+2}, Z_{r+g+3})] = 2^-16 (1 + 2^-8 e^{(-4-8g)/256})

The attack-relevant reformulation (paper eq 17-19) works on
*differentials*: with Zhat = (Z_r xor Z_{r+g+2}, Z_{r+1} xor Z_{r+g+3}),
the event above is ``Zhat = (0, 0)`` and XORing ciphertexts transfers the
bias onto plaintext differentials.  This module provides alpha(g) and the
differential distribution used by likelihoods and samplers.

The paper empirically confirmed the bias up to gaps of at least 135 and
notes eq 1 slightly underestimates the true strength; attacks cap the gap
at 128 (``MAX_GAP``).
"""

from __future__ import annotations

import numpy as np

#: Maximum gap the paper's attacks use (§4.2).
MAX_GAP = 128

#: Number of differential cells (byte pairs).
_CELLS = 65536


def absab_alpha(gap: int | np.ndarray) -> float | np.ndarray:
    """The ABSAB match probability alpha(g) of paper eq 18.

    Args:
        gap: gap length g >= 0 (scalar or array).

    Returns:
        Pr[differential == (0,0)] under the keystream model.
    """
    gap_arr = np.asarray(gap, dtype=np.float64)
    if np.any(gap_arr < 0):
        raise ValueError("gap must be non-negative")
    alpha = 2.0**-16 * (1.0 + 2.0**-8 * np.exp((-4.0 - 8.0 * gap_arr) / 256.0))
    if np.isscalar(gap) or gap_arr.ndim == 0:
        return float(alpha)
    return alpha


def absab_relative_bias(gap: int | np.ndarray) -> float | np.ndarray:
    """Relative bias of the (0,0) differential cell: alpha/2^-16 - 1."""
    return absab_alpha(gap) * _CELLS - 1.0


def differential_distribution(gap: int) -> np.ndarray:
    """Distribution over the 2-byte keystream differential for gap ``g``.

    Cell (0, 0) (flattened index 0) carries alpha(g); all other cells
    share the remaining mass uniformly — the paper's simplification in
    eq 22 ("only one differential pair is biased").

    Returns:
        Flat float64 array of length 65536; index ``256*a + b`` is the
        probability of differential (a, b).
    """
    alpha = absab_alpha(gap)
    dist = np.full(_CELLS, (1.0 - alpha) / (_CELLS - 1), dtype=np.float64)
    dist[0] = alpha
    return dist


def usable_gaps(
    r: int,
    unknown_span: tuple[int, int],
    stream_len: int,
    *,
    max_gap: int = MAX_GAP,
) -> list[tuple[int, str]]:
    """Enumerate ABSAB alignments usable for the digraph at (r, r+1).

    The attack surrounds the unknown plaintext with known plaintext on
    both sides (paper §4.2-§4.3, "2 x 129 ABSAB biases").  The digraph at
    (r, r+1) — which may include one boundary byte — can pair with a
    fully *known* digraph after it at (r+2+g, r+3+g), or before it at
    (r-2-g, r-1-g), for any gap g up to ``max_gap``.

    Args:
        r: 1-indexed first position of the targeted digraph.
        unknown_span: inclusive (first, last) positions of the unknown
            plaintext; everything outside is known.
        stream_len: total plaintext length (positions run 1..stream_len).
        max_gap: inclusive cap on the gap length (paper uses 128).

    Returns:
        List of ``(gap, side)`` with side in {"before", "after"}, where
        side names the location of the *known* partner digraph.
    """
    first_unknown, last_unknown = unknown_span
    alignments: list[tuple[int, str]] = []
    for gap in range(max_gap + 1):
        # Known partner after the unknown region.
        partner_first = r + 2 + gap
        if partner_first > last_unknown and partner_first + 1 <= stream_len:
            alignments.append((gap, "after"))
        # Known partner before the unknown region.
        partner_first = r - 2 - gap
        if partner_first >= 1 and partner_first + 1 < first_unknown:
            alignments.append((gap, "before"))
    return alignments
