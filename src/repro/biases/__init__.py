"""Catalog of RC4 keystream biases and distribution models (paper §2-3).

Three kinds of objects live here:

- **catalog entries** — the biases the paper states, with probabilities
  recorded exactly as printed (``repro.biases.short_term``,
  ``repro.biases.long_term``, ``repro.biases.fluhrer_mcgrew``,
  ``repro.biases.mantin_absab``);
- **analytic distribution builders** — probability vectors/matrices
  assembled from catalog entries, consumed by the likelihood machinery
  and the sufficient-statistic samplers;
- **empirical measurement** — distributions measured with the batch RC4
  generator (``repro.biases.empirical``), the production path for the
  attacks.
"""

from .fluhrer_mcgrew import (
    FM_RULES,
    FmRule,
    fm_biased_cells,
    fm_digraph_distribution,
    fm_distributions_for_positions,
    position_to_counter,
)
from .long_term import (
    EQ9_RELATIVE_BIAS,
    NEW_128_0,
    SENGUPTA_00,
    W256_PAIR_BIASES,
    w256_gap1_distribution,
)
from .mantin_absab import (
    MAX_GAP,
    absab_alpha,
    absab_relative_bias,
    differential_distribution,
    usable_gaps,
)
from .model import EqualityBias, PairBias, SingleByteBias, paper_prob
from .empirical import counts_to_distribution, measure_digraph, measure_single_byte
from .short_term import (
    EQUALITY_BIASES,
    ISOBE_Z1Z2_ZERO,
    KEYLEN_BIAS_16,
    MANTIN_SHAMIR,
    PAUL_PRENEEL_Z1Z2,
    TABLE2_ALL,
    TABLE2_CONSECUTIVE,
    TABLE2_NONCONSECUTIVE,
    Z1_129,
    Z1Z2_FAMILIES,
    Z1Z2_PAIR_PATTERNS,
    beyond_256_biases,
    r_value_bias_positions,
    single_byte_model,
    zero_bias,
)


def mantin_shamir_distribution():
    """Distribution of Z_2 (the Mantin–Shamir doubled-zero byte)."""
    return single_byte_model(2)


__all__ = [
    "EQ9_RELATIVE_BIAS",
    "EQUALITY_BIASES",
    "FM_RULES",
    "FmRule",
    "ISOBE_Z1Z2_ZERO",
    "KEYLEN_BIAS_16",
    "MANTIN_SHAMIR",
    "MAX_GAP",
    "NEW_128_0",
    "PAUL_PRENEEL_Z1Z2",
    "PairBias",
    "EqualityBias",
    "SENGUPTA_00",
    "SingleByteBias",
    "TABLE2_ALL",
    "TABLE2_CONSECUTIVE",
    "TABLE2_NONCONSECUTIVE",
    "W256_PAIR_BIASES",
    "Z1_129",
    "Z1Z2_FAMILIES",
    "Z1Z2_PAIR_PATTERNS",
    "absab_alpha",
    "absab_relative_bias",
    "beyond_256_biases",
    "counts_to_distribution",
    "differential_distribution",
    "fm_biased_cells",
    "fm_digraph_distribution",
    "fm_distributions_for_positions",
    "mantin_shamir_distribution",
    "measure_digraph",
    "measure_single_byte",
    "paper_prob",
    "position_to_counter",
    "r_value_bias_positions",
    "single_byte_model",
    "usable_gaps",
    "w256_gap1_distribution",
    "zero_bias",
]
