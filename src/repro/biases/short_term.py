"""Catalog of short-term (initial-keystream) biases (paper §2.1.1, §3.3).

Entries store the probabilities exactly as the paper prints them (in the
``2^a (1 ± 2^b)`` notation, via :func:`repro.biases.model.paper_prob`),
so benchmarks can compare measured values against the paper's numbers.
Where the paper gives only a qualitative description the entry is marked
``approximate``.
"""

from __future__ import annotations

import numpy as np

from .model import EqualityBias, PairBias, SingleByteBias, paper_prob

# ---------------------------------------------------------------------------
# Classical single-byte biases (paper §2.1.1).
# ---------------------------------------------------------------------------

#: Mantin & Shamir: Pr[Z_2 = 0] ~ 2 * 2^-8.
MANTIN_SHAMIR = SingleByteBias(
    position=2,
    value=0,
    probability=2.0 * 2.0**-8,
    relative_bias=1.0,
    source="Mantin-Shamir (FSE'01)",
)


def zero_bias(position: int) -> SingleByteBias:
    """Bias of Z_r toward 0 for 3 <= r <= 255 (Maitra et al. / Sen Gupta
    et al., refined magnitude).  The magnitude used here,

        Pr[Z_r = 0] ~ 1/256 + (256 - r) / (256^2 * 255)

    is the standard closed-form approximation; entries are marked
    approximate since the paper cites but does not restate the formula.
    """
    if not 3 <= position <= 255:
        raise ValueError(f"zero bias holds for 3 <= r <= 255, got {position}")
    probability = 1.0 / 256.0 + (256.0 - position) / (256.0**2 * 255.0)
    return SingleByteBias(
        position=position,
        value=0,
        probability=probability,
        relative_bias=probability * 256.0 - 1.0,
        source="Maitra et al. / Sen Gupta et al.",
        approximate=True,
    )


#: First-byte bias for 16-byte keys: Z_1 lands on 0x81 = 129 *less*
#: often than uniform — one of the headline per-position irregularities
#: visible in AlFardan et al.'s Z_1 distribution plots.  The magnitude
#: recorded here (~2^-8 (1 - 2^-6.8)) was measured by this reproduction
#: over 2^26 random 16-byte keys; marked approximate.
Z1_129 = SingleByteBias(
    position=1,
    value=0x81,
    probability=paper_prob(-8, -6.8, -1),
    relative_bias=-(2.0**-6.8),
    source="AlFardan et al. (Z1 distribution); magnitude measured here",
    approximate=True,
)

#: Key-length bias: for 16-byte keys, Z_16 is biased toward 256-16 = 240
#: (Sen Gupta et al.).  The magnitude is taken from AlFardan et al.'s
#: empirical estimate (~2^-8 (1 + 2^-4.8)); marked approximate.
KEYLEN_BIAS_16 = SingleByteBias(
    position=16,
    value=240,
    probability=paper_prob(-8, -4.8, +1),
    relative_bias=2.0**-4.8,
    source="Sen Gupta et al. (key-length)",
    approximate=True,
)

# ---------------------------------------------------------------------------
# Table 2: consecutive biases Z_{16w-1} = Z_{16w} = 256-16w (eq 2).
# ---------------------------------------------------------------------------


def _consecutive(w: int, base_exp: float, rel_exp: float) -> PairBias:
    position = 16 * w
    value = 256 - 16 * w
    return PairBias(
        positions=(position - 1, position),
        values=(value, value),
        probability=paper_prob(base_exp, rel_exp, -1),
        baseline=2.0**base_exp,
        source="Table 2 (consecutive, key-length dependent)",
    )


#: The seven consecutive-pair rows of Table 2 (w = 1..7).  The baseline
#: 2^a is the single-byte-expected probability, and the factor (1 - 2^b)
#: the relative bias against it: the pairs occur *more* often than a
#: uniform pair (2^a > 2^-16) but *less* often than the marginals predict.
TABLE2_CONSECUTIVE: tuple[PairBias, ...] = (
    _consecutive(1, -15.94786, -4.894),
    _consecutive(2, -15.96486, -5.427),
    _consecutive(3, -15.97595, -5.963),
    _consecutive(4, -15.98363, -6.469),
    _consecutive(5, -15.99020, -7.150),
    _consecutive(6, -15.99405, -7.740),
    _consecutive(7, -15.99668, -8.331),
)

# ---------------------------------------------------------------------------
# Table 2: non-consecutive pair biases.
# ---------------------------------------------------------------------------


def _pair(a, va, b, vb, base_exp, rel_exp, sign) -> PairBias:
    return PairBias(
        positions=(a, b),
        values=(va, vb),
        probability=paper_prob(base_exp, rel_exp, sign),
        baseline=2.0**base_exp,
        source="Table 2 (non-consecutive)",
    )


TABLE2_NONCONSECUTIVE: tuple[PairBias, ...] = (
    _pair(3, 4, 5, 4, -16.00243, -7.912, +1),
    _pair(3, 131, 131, 3, -15.99543, -8.700, +1),
    _pair(3, 131, 131, 131, -15.99347, -9.511, -1),
    _pair(4, 5, 6, 255, -15.99918, -8.208, +1),
    _pair(14, 0, 16, 14, -15.99349, -9.941, +1),
    _pair(15, 47, 17, 16, -16.00191, -11.279, +1),
    _pair(15, 112, 32, 224, -15.96637, -10.904, -1),
    _pair(15, 159, 32, 224, -15.96574, -9.493, +1),
    _pair(16, 240, 31, 63, -15.95021, -8.996, +1),
    _pair(16, 240, 32, 16, -15.94976, -9.261, +1),
    _pair(16, 240, 33, 16, -15.94960, -10.516, +1),
    _pair(16, 240, 40, 32, -15.94976, -10.933, +1),
    _pair(16, 240, 48, 16, -15.94989, -10.832, +1),
    _pair(16, 240, 48, 208, -15.92619, -10.965, -1),
    _pair(16, 240, 64, 192, -15.93357, -11.229, -1),
)

TABLE2_ALL: tuple[PairBias, ...] = TABLE2_CONSECUTIVE + TABLE2_NONCONSECUTIVE

# ---------------------------------------------------------------------------
# §3.3.2: influence of Z1 and Z2 — six bias families over 3 <= i <= 256.
# ---------------------------------------------------------------------------

#: The six families, as (name, z_position, z_value_fn, zi_value_fn, sign).
#: Values are functions of the position i; sign is the *typical* sign of
#: the relative bias per the paper (family 3 always negative; families
#: 5-6 involving Z2 generally negative; Z1 families generally positive).
Z1Z2_FAMILIES: tuple[tuple[str, int, object, object, int], ...] = (
    ("Z1=257-i & Zi=0", 1, lambda i: (257 - i) % 256, lambda i: 0, +1),
    ("Z1=257-i & Zi=i", 1, lambda i: (257 - i) % 256, lambda i: i % 256, +1),
    (
        "Z1=257-i & Zi=257-i",
        1,
        lambda i: (257 - i) % 256,
        lambda i: (257 - i) % 256,
        -1,
    ),
    ("Z1=i-1 & Zi=1", 1, lambda i: (i - 1) % 256, lambda i: 1, +1),
    ("Z2=0 & Zi=0", 2, lambda i: 0, lambda i: 0, -1),
    ("Z2=0 & Zi=i", 2, lambda i: 0, lambda i: i % 256, -1),
)

#: §3.3.2 pairs A-D between Z1 and Z2 (x ranges over byte values):
#: A) Z1=0 & Z2=x (negative, x != 0)     C) Z1=x & Z2=0 (negative, x != 0)
#: B) Z1=x & Z2=258-x (positive)         D) Z1=x & Z2=1 (positive)
Z1Z2_PAIR_PATTERNS: tuple[tuple[str, object, int], ...] = (
    ("A: Z1=0, Z2=x", lambda x: (0, x % 256), -1),
    ("B: Z1=x, Z2=258-x", lambda x: (x % 256, (258 - x) % 256), +1),
    ("C: Z1=x, Z2=0", lambda x: (x % 256, 0), -1),
    ("D: Z1=x, Z2=1", lambda x: (x % 256, 1), +1),
)

#: Paul & Preneel: Pr[Z1 = Z2] = 2^-8 (1 - 2^-8); Isobe et al. refined
#: Pr[Z1 = Z2 = 0] ~ 3 * 2^-16.
PAUL_PRENEEL_Z1Z2 = EqualityBias(
    positions=(1, 2),
    probability=paper_prob(-8, -8, -1),
    source="Paul-Preneel (FSE'04)",
)
ISOBE_Z1Z2_ZERO = PairBias(
    positions=(1, 2),
    values=(0, 0),
    probability=3.0 * 2.0**-16,
    baseline=2.0**-16,
    source="Isobe et al. (FSE'13)",
)

#: Paper eqs 3-5: new equalities involving Z1/Z2.
EQ3_Z1_EQ_Z3 = EqualityBias((1, 3), paper_prob(-8, -9.617, -1), "paper eq 3")
EQ4_Z1_EQ_Z4 = EqualityBias((1, 4), paper_prob(-8, -8.590, +1), "paper eq 4")
EQ5_Z2_EQ_Z4 = EqualityBias((2, 4), paper_prob(-8, -9.622, -1), "paper eq 5")

EQUALITY_BIASES: tuple[EqualityBias, ...] = (
    PAUL_PRENEEL_Z1Z2,
    EQ3_Z1_EQ_Z3,
    EQ4_Z1_EQ_Z4,
    EQ5_Z2_EQ_Z4,
)

# ---------------------------------------------------------------------------
# §3.3.3: single-byte biases beyond position 256.
# ---------------------------------------------------------------------------


def beyond_256_biases() -> list[SingleByteBias]:
    """Key-length dependent biases Z_{256+16k} = k*32 for 1 <= k <= 7.

    The paper reports these as "significant" from Figure 6 without
    printing magnitudes; entries are qualitative (probability None) and
    approximate.
    """
    return [
        SingleByteBias(
            position=256 + 16 * k,
            value=(32 * k) & 0xFF,
            probability=None,
            relative_bias=None,
            source="paper §3.3.3 (key-length, beyond 256)",
            approximate=True,
        )
        for k in range(1, 8)
    ]


def r_value_bias_positions(limit: int = 256) -> list[SingleByteBias]:
    """AlFardan et al. / Isobe et al.: bias toward value r at position r.

    Magnitudes are not restated by the paper; entries are qualitative.
    """
    return [
        SingleByteBias(
            position=r,
            value=r % 256,
            probability=None,
            relative_bias=None,
            source="AlFardan et al. / Isobe et al. (Z_r -> r)",
            approximate=True,
        )
        for r in range(1, limit + 1)
    ]


def single_byte_model(position: int, keylen: int = 16) -> np.ndarray:
    """Analytic single-byte distribution for an initial keystream position.

    Assembles the well-specified catalog entries into a 256-vector:
    uniform baseline, plus the Mantin–Shamir Z2 bias, the zero bias for
    3 <= r <= 255, and the key-length bias at r = keylen.  This model is
    intentionally conservative — attacks that need precise initial-byte
    distributions use empirically generated ones (repro.biases.empirical);
    this analytic model serves tests, examples and samplers.
    """
    if position < 1:
        raise ValueError(f"positions are 1-indexed, got {position}")
    dist = np.full(256, 1.0 / 256.0, dtype=np.float64)
    if position == 2:
        dist[0] = MANTIN_SHAMIR.probability
    elif 3 <= position <= 255:
        dist[0] = zero_bias(position).probability
    if position == keylen and keylen == 16:
        dist[KEYLEN_BIAS_16.value] = KEYLEN_BIAS_16.probability
    # Renormalise the remaining mass over unbiased values.
    biased = dist != 1.0 / 256.0
    residual = 1.0 - dist[biased].sum()
    n_unbiased = int((~biased).sum())
    if n_unbiased:
        dist[~biased] = residual / n_unbiased
    return dist
