"""Plain-text table rendering for benchmark and example output.

The benchmarks print paper-style rows; this module keeps that formatting
in one place so every bench reports results the same way.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
