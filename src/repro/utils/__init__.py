"""Shared low-level helpers: byte manipulation, serialization, progress."""

from .bytesops import (
    hexdump,
    mk16,
    rotl32,
    rotr16,
    rotr32,
    u16_hi,
    u16_lo,
    xor_bytes,
    xswap16,
)

__all__ = [
    "hexdump",
    "mk16",
    "rotl32",
    "rotr16",
    "rotr32",
    "u16_hi",
    "u16_lo",
    "xor_bytes",
    "xswap16",
]
