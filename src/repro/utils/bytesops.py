"""Byte- and word-level primitives used across the cryptographic substrates.

These are deliberately small, explicit functions (no clever bit hacks) so
each protocol implementation (Michael, TKIP key mixing, checksums) reads
like its specification.
"""

from __future__ import annotations

MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def rotl32(value: int, count: int) -> int:
    """Rotate a 32-bit word left by ``count`` bits."""
    count %= 32
    value &= MASK32
    return ((value << count) | (value >> (32 - count))) & MASK32 if count else value


def rotr32(value: int, count: int) -> int:
    """Rotate a 32-bit word right by ``count`` bits."""
    return rotl32(value, 32 - (count % 32))


def rotr16(value: int, count: int) -> int:
    """Rotate a 16-bit word right by ``count`` bits."""
    count %= 16
    value &= MASK16
    return ((value >> count) | (value << (16 - count))) & MASK16 if count else value


def xswap16(value: int) -> int:
    """Swap the two bytes of a 16-bit word (TKIP/Michael ``XSWAP``)."""
    value &= MASK16
    return ((value & 0xFF) << 8) | (value >> 8)


def xswap32(value: int) -> int:
    """Swap bytes within each 16-bit half of a 32-bit word (Michael ``XSWAP``)."""
    value &= MASK32
    return (
        ((value & 0x00FF00FF) << 8) | ((value & 0xFF00FF00) >> 8)
    ) & MASK32


def mk16(hi: int, lo: int) -> int:
    """Build a 16-bit word from high and low bytes (TKIP ``Mk16``)."""
    return ((hi & 0xFF) << 8) | (lo & 0xFF)


def u16_hi(value: int) -> int:
    """High byte of a 16-bit word (TKIP ``Hi8``)."""
    return (value >> 8) & 0xFF


def u16_lo(value: int) -> int:
    """Low byte of a 16-bit word (TKIP ``Lo8``)."""
    return value & 0xFF


def hexdump(data: bytes, *, width: int = 16) -> str:
    """Render bytes as a classic offset/hex/ASCII dump (for examples/logs)."""
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{offset:08x}  {hexpart:<{width * 3}} {asciipart}")
    return "\n".join(lines)
