"""Versioned on-disk storage for counter arrays and metadata.

Datasets are stored as ``.npz`` archives with a JSON metadata blob under
the reserved key ``__meta__``.  The format is self-describing so a dataset
generated at one scale can be validated before use at another.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..errors import DatasetError

FORMAT_VERSION = 1
_META_KEY = "__meta__"


def save_arrays(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any],
) -> Path:
    """Save named arrays plus JSON metadata to ``path`` (``.npz``)."""
    path = Path(path)
    if _META_KEY in arrays:
        raise DatasetError(f"array name {_META_KEY!r} is reserved")
    meta = dict(metadata)
    meta["format_version"] = FORMAT_VERSION
    encoded = json.dumps(meta, sort_keys=True).encode("utf-8")
    blob = np.frombuffer(encoded, dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{_META_KEY: blob}, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_arrays(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load arrays and metadata previously written by :func:`save_arrays`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise DatasetError(f"{path} has no metadata; not a repro dataset")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise DatasetError(
                f"{path}: unsupported format version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        arrays = {name: archive[name] for name in archive.files if name != _META_KEY}
    return arrays, meta
