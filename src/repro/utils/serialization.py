"""Versioned on-disk storage for counter arrays and metadata.

Datasets are stored as ``.npz`` archives with a JSON metadata blob under
the reserved key ``__meta__``.  The format is self-describing so a dataset
generated at one scale can be validated before use at another.

The module also hosts the canonical-JSON helpers the experiment API
(:mod:`repro.api`) uses for :class:`~repro.api.ExperimentResult`
round-tripping: :func:`to_jsonable` normalises numpy scalars/arrays and
tuples into JSON-native values, and :func:`canonical_json` renders them
deterministically (sorted keys, fixed separators) so serialising the
same record twice is bit-identical.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from ..errors import DatasetError

FORMAT_VERSION = 1
_META_KEY = "__meta__"


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-native types.

    Numpy integers/floats/bools become Python scalars, numpy arrays and
    tuples become lists, ``bytes`` become latin-1 strings (lossless for
    arbitrary byte values), and mappings get string keys.  Raises
    :class:`TypeError` for values with no faithful JSON form.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, bytes):
        return value.decode("latin-1")
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    raise TypeError(f"value of type {type(value).__name__} is not JSON-serialisable")


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering (sorted keys, fixed separators).

    ``canonical_json(json.loads(canonical_json(x))) == canonical_json(x)``
    for every jsonable ``x`` — the bit-identical round-trip property the
    experiment-result format relies on.  NaN/Infinity are rejected
    (``allow_nan=False``): they have no standard JSON form and NaN would
    silently break round-trip equality.
    """
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def append_jsonl(path: str | Path, record: Any) -> str:
    """Durably append one canonical-JSON line to ``path``.

    The line is rendered with :func:`canonical_json`, written with a
    single ``write(2)`` on an ``O_APPEND`` descriptor (atomic with
    respect to concurrent appenders on POSIX filesystems), and fsync'd
    before returning — the append-only discipline the results warehouse
    (:mod:`repro.warehouse`) builds on.  If the file currently ends in a
    torn line (a writer crashed mid-append, leaving no trailing
    newline), a newline is prefixed so the torn bytes become one
    isolated corrupt line instead of swallowing this record.

    Returns the exact line written (without the trailing newline).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = canonical_json(record)
    data = (line + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        try:
            with open(path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        data = b"\n" + data
        except OSError:
            pass
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    return line


def iter_jsonl(
    path: str | Path, *, label: str = "record"
) -> Iterator[tuple[int, Any]]:
    """Yield ``(line_number, parsed_record)`` for each line of ``path``.

    Blank lines are ignored; lines that fail to parse as JSON are
    skipped with a :class:`RuntimeWarning` naming the line — corruption
    never silently hides the records around it, and never aborts a load.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                yield lineno, json.loads(raw)
            except json.JSONDecodeError as exc:
                warnings.warn(
                    f"{path}:{lineno}: skipping corrupt {label} ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )


def save_arrays(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any],
) -> Path:
    """Save named arrays plus JSON metadata to ``path`` (``.npz``)."""
    path = Path(path)
    if _META_KEY in arrays:
        raise DatasetError(f"array name {_META_KEY!r} is reserved")
    meta = dict(metadata)
    meta["format_version"] = FORMAT_VERSION
    encoded = json.dumps(meta, sort_keys=True).encode("utf-8")
    blob = np.frombuffer(encoded, dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{_META_KEY: blob}, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_arrays(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load arrays and metadata previously written by :func:`save_arrays`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise DatasetError(f"{path} has no metadata; not a repro dataset")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise DatasetError(
                f"{path}: unsupported format version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        arrays = {name: archive[name] for name in archive.files if name != _META_KEY}
    return arrays, meta
