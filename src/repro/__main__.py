"""Command-line entry point: ``python -m repro <command>``.

Commands:
    info    print version, subsystem inventory, and scale configuration
    tkip    run the scaled WPA-TKIP attack end to end (paper §5)
    https   run the scaled HTTPS cookie attack end to end (paper §6)

Both attacks honour ``REPRO_SCALE`` / ``REPRO_SEED`` and the ``--scale``
/ ``--seed`` flags, and print the same paper-aligned progress the
examples do (see examples/ for the fully narrated versions).
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .config import ReproConfig, get_config


def _build_config(args: argparse.Namespace) -> ReproConfig:
    base = get_config()
    return ReproConfig(
        scale=args.scale if args.scale is not None else base.scale,
        seed=args.seed if args.seed is not None else base.seed,
    )


def _cmd_info(args: argparse.Namespace) -> int:
    config = _build_config(args)
    print(f"repro {__version__} — RC4 biases / WPA-TKIP / TLS reproduction")
    print(f"scale={config.scale} seed={config.seed}")
    print("subsystems: rc4, stats, biases, datasets, core, net, tkip, tls, "
          "simulate, analysis")
    print("docs: README.md (usage), DESIGN.md (inventory), "
          "EXPERIMENTS.md (paper vs measured)")
    return 0


def _cmd_tkip(args: argparse.Namespace) -> int:
    from .simulate import WifiAttackSimulation, sampled_capture
    from .tkip import default_tsc_space, generate_per_tsc

    config = _build_config(args)
    sim = WifiAttackSimulation(config)
    plaintext = sim.true_plaintext
    num_tsc = config.scaled(8, maximum=256)
    keys_per_tsc = config.scaled(1 << 12, maximum=1 << 18)
    per_tsc = generate_per_tsc(
        config, default_tsc_space(num_tsc), keys_per_tsc, length=len(plaintext)
    )
    capture = sampled_capture(
        per_tsc,
        plaintext,
        range(1, len(plaintext) + 1),
        packets_per_tsc=config.scaled(1 << 12, minimum=1 << 10, maximum=1 << 20),
        seed=config.rng("cli-tkip"),
    )
    result = sim.attack(capture, per_tsc, max_candidates=1 << 20)
    print(f"captures: {capture.num_captured}  "
          f"candidate rank: {result.candidates_tried}  "
          f"correct: {result.correct}")
    print(f"recovered MIC key: {result.mic_key.hex()}")
    return 0 if result.correct else 1


def _cmd_https(args: argparse.Namespace) -> int:
    from .simulate import HttpsAttackSimulation

    config = _build_config(args)
    cookie_len = 3 if config.scale < 4 else 16
    sim = HttpsAttackSimulation(config, cookie_len=cookie_len, max_gap=128)
    stats = sim.sampled_statistics(
        config.scaled(1 << 29, minimum=1 << 29, maximum=9 * 2**27)
    )
    result = sim.attack(
        stats,
        num_candidates=config.scaled(1 << 12, minimum=1 << 12, maximum=1 << 23),
    )
    print(f"requests: {result.num_requests}  rank: {result.rank}  "
          f"attempts: {result.attempts}")
    print(f"recovered cookie: {result.cookie.decode('latin-1')}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'All Your Biases Belong To Us' "
        "(RC4 attacks on WPA-TKIP and TLS).",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="sample-count multiplier (overrides REPRO_SCALE)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (overrides REPRO_SEED)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="version and inventory").set_defaults(
        func=_cmd_info
    )
    sub.add_parser("tkip", help="run the scaled §5 attack").set_defaults(
        func=_cmd_tkip
    )
    sub.add_parser("https", help="run the scaled §6 attack").set_defaults(
        func=_cmd_https
    )
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
