"""Command-line entry point: ``python -m repro <command>``.

Every command drives the unified experiment API (:mod:`repro.api`):

    list [--json]                 enumerate the experiment registry
    run <experiment> [--param k=v ...] [--json PATH|-]
                                  run any registered experiment
    info [--json]                 version, config, backend, registry inventory
    tkip / https                  thin aliases for run attack-tkip / attack-https
    fleet-worker <job_dir>        pull-based capture worker (see repro.fleet)
    fleet-status <job_dir>        shard states of a fleet job directory

Global flags ``--scale`` / ``--seed`` / ``--threads`` override the
``REPRO_SCALE`` / ``REPRO_SEED`` / ``REPRO_NATIVE_THREADS`` environment
defaults.  ``run --json -`` prints the canonical
:class:`~repro.api.ExperimentResult` JSON to stdout (machine-readable:
``from_json`` round-trips it bit-identically).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from . import __version__
from .api import (
    ExperimentSpec,
    ProgressEvent,
    Session,
    list_experiments,
)
from .config import ReproConfig, get_config
from .errors import ReproError


def _build_config(args: argparse.Namespace) -> ReproConfig:
    base = get_config()
    replacements = {}
    if args.scale is not None:
        replacements["scale"] = args.scale
    if args.seed is not None:
        replacements["seed"] = args.seed
    if getattr(args, "threads", None) is not None:
        replacements["native_threads"] = args.threads
    return dataclasses.replace(base, **replacements)


def _print_progress(event: ProgressEvent) -> None:
    # stderr, so `run --json -` keeps stdout purely machine-readable.
    print(f"[{event.experiment}/{event.stage}] {event.message}", file=sys.stderr)


def _parse_params(pairs: list[str]) -> dict[str, str]:
    overrides: dict[str, str] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ReproError(
                f"--param expects name=value, got {pair!r}"
            )
        overrides[name] = value
    return overrides


def _format_metric(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value) if isinstance(value, str) else str(value)


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=2))
        return 0
    width = max(len(spec.name) for spec in specs)
    print(f"{len(specs)} registered experiments "
          f"(run with: python -m repro run <name>):")
    for spec in specs:
        section = f"{spec.section:>5}" if spec.section else "     "
        print(f"  {spec.name:<{width}}  {section}  {spec.description}")
    return 0


def _describe_params(spec: ExperimentSpec) -> str:
    names = [param.name for param in spec.params]
    return ", ".join(names) if names else "(none)"


def _cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args)
    session = Session(config, cache_dir=args.cache_dir)
    if not args.quiet:
        session.add_progress(_print_progress)
    overrides = _parse_params(args.param or [])
    result = session.run(args.experiment, **overrides)
    if args.json == "-":
        print(result.to_json())
    else:
        if args.json:
            result.save(args.json)
        print(f"{result.experiment}: done in {result.timings['total']:.2f}s")
        for key, value in result.metrics.items():
            print(f"  {key}: {_format_metric(value)}")
        if args.json:
            print(f"  (result JSON written to {args.json})")
    # Attacks report success; propagate it like the old tkip command did.
    correct = result.metrics.get("correct")
    return 0 if correct in (None, True) else 1


def _cmd_info(args: argparse.Namespace) -> int:
    from .rc4 import _native

    config = _build_config(args)
    specs = list_experiments()
    if args.json:
        print(json.dumps(
            {
                "version": __version__,
                "scale": config.scale,
                "seed": config.seed,
                "native": config.native,
                "native_threads": config.native_threads,
                "backend": _native.status(),
                "experiments": [spec.describe() for spec in specs],
            },
            indent=2,
        ))
        return 0
    print(f"repro {__version__} — RC4 biases / WPA-TKIP / TLS reproduction")
    print(f"scale={config.scale} seed={config.seed}")
    print(f"backend: {_native.status()}")
    print("subsystems: rc4, stats, biases, datasets, core, net, tkip, tls, "
          "simulate, analysis, api")
    print(f"experiments ({len(specs)} registered):")
    for spec in specs:
        print(f"  {spec.name}: {spec.description} "
              f"[params: {_describe_params(spec)}]")
    print("docs: README.md (usage + Experiment API), ROADMAP.md "
          "(architecture), PAPER.md (source paper abstract)")
    return 0


def _cmd_tkip(args: argparse.Namespace) -> int:
    """Alias for ``run attack-tkip`` with the classic two-line summary."""
    config = _build_config(args)
    session = Session(config)
    result = session.run("attack-tkip")
    m = result.metrics
    print(f"captures: {m['captures']}  "
          f"candidate rank: {m['candidate_rank']}  "
          f"correct: {m['correct']}")
    print(f"recovered MIC key: {m['mic_key']}")
    return 0 if m["correct"] else 1


def _cmd_https(args: argparse.Namespace) -> int:
    """Alias for ``run attack-https`` with the classic two-line summary."""
    config = _build_config(args)
    session = Session(config)
    result = session.run("attack-https")
    m = result.metrics
    print(f"requests: {m['num_requests']}  rank: {m['rank']}  "
          f"attempts: {m['attempts']}")
    print(f"recovered cookie: {m['cookie']}")
    return 0


def _cmd_fleet_worker(args: argparse.Namespace) -> int:
    """Run one pull-based fleet worker over a shared job directory."""
    from .fleet import run_worker

    config = _build_config(args)
    report = run_worker(
        args.job_dir,
        worker_id=args.worker_id,
        config=config,
        max_shards=args.max_shards,
        throttle=args.throttle,
        wait_for_peers=args.wait_for_peers,
    )
    print(json.dumps(report.to_jsonable()))
    return 0 if not report.shards_failed else 1


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """Print the shard state machine of a fleet job directory."""
    from .fleet import Coordinator

    coordinator = Coordinator.open(args.job_dir, config=_build_config(args))
    status = coordinator.status()
    if args.json:
        print(json.dumps(
            {
                "fingerprint": coordinator.manifest.fingerprint,
                "kind": coordinator.manifest.kind,
                "num_shards": len(coordinator.manifest.shards),
                "counts": status.counts,
                "shards": [s.to_jsonable() for s in status.states],
            },
            indent=2,
        ))
        return 0
    counts = status.counts
    print(f"fleet job {args.job_dir} "
          f"[{coordinator.manifest.kind} {coordinator.manifest.fingerprint[:16]}]")
    print("  " + "  ".join(f"{k}: {v}" for k, v in counts.items()))
    for shard in status.states:
        if shard.state != "done":
            detail = f" ({shard.error})" if shard.error else ""
            print(f"  shard {shard.index:>5}: {shard.state} "
                  f"attempts={shard.attempts}{detail}")
    return 0 if status.terminal and not counts["failed"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'All Your Biases Belong To Us' "
        "(RC4 attacks on WPA-TKIP and TLS).",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="sample-count multiplier (overrides REPRO_SCALE)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (overrides REPRO_SEED)")
    parser.add_argument("--threads", type=int, default=None,
                        help="native kernel threads "
                        "(overrides REPRO_NATIVE_THREADS)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate registered experiments")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable registry dump")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run a registered experiment")
    p_run.add_argument("experiment", help="registry name (see: list)")
    p_run.add_argument("--param", action="append", metavar="NAME=VALUE",
                       help="override an experiment parameter (repeatable)")
    p_run.add_argument("--json", metavar="PATH", default=None,
                       help="write the ExperimentResult JSON to PATH "
                       "('-' prints it to stdout)")
    p_run.add_argument("--cache-dir", default=None,
                       help="on-disk dataset cache directory")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress progress output")
    p_run.set_defaults(func=_cmd_run)

    p_info = sub.add_parser("info", help="version, config, and inventory")
    p_info.add_argument("--json", action="store_true",
                        help="machine-readable info dump")
    p_info.set_defaults(func=_cmd_info)

    sub.add_parser("tkip", help="run the scaled §5 attack "
                   "(alias: run attack-tkip)").set_defaults(func=_cmd_tkip)
    sub.add_parser("https", help="run the scaled §6 attack "
                   "(alias: run attack-https)").set_defaults(func=_cmd_https)

    p_worker = sub.add_parser(
        "fleet-worker",
        help="claim and capture shards from a fleet job directory",
    )
    p_worker.add_argument("job_dir", help="directory holding manifest.json")
    p_worker.add_argument("--worker-id", default=None,
                          help="stable worker identity (default: host:pid)")
    p_worker.add_argument("--max-shards", type=int, default=None,
                          help="stop after completing this many shards")
    p_worker.add_argument("--throttle", type=float, default=0.0,
                          help="extra seconds to sleep after each batch "
                          "(rate-limit-aware pacing)")
    p_worker.add_argument("--wait-for-peers", action="store_true",
                          help="keep polling while peers hold live leases "
                          "instead of exiting when nothing is claimable")
    p_worker.set_defaults(func=_cmd_fleet_worker)

    p_status = sub.add_parser(
        "fleet-status", help="show shard states of a fleet job directory"
    )
    p_status.add_argument("job_dir", help="directory holding manifest.json")
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable status dump")
    p_status.set_defaults(func=_cmd_fleet_status)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
