"""Command-line entry point: ``python -m repro <command>``.

Every command drives the unified experiment API (:mod:`repro.api`):

    list [--json]                 enumerate the experiment registry
    run <experiment> [--param k=v ...] [--json PATH|-]
                                  run any registered experiment
    sweep <exp> [...] --store DIR --grid k=v1,v2,...
                                  grid sweep into a results warehouse
                                  (resumable: stored runs are skipped)
    store query <dir> [filters]   query warehoused runs
    store report <dir> [filters]  comparison table / figure from stored runs
    info [--json]                 version, config, backend, registry inventory
    tkip / https                  thin aliases for run attack-tkip / attack-https
    fleet-worker <job_dir>        pull-based capture worker (see repro.fleet)
    fleet-status <job_dir>        shard states of a fleet job directory

Global flags ``--scale`` / ``--seed`` / ``--threads`` override the
``REPRO_SCALE`` / ``REPRO_SEED`` / ``REPRO_NATIVE_THREADS`` environment
defaults.  ``run --json -`` prints the canonical
:class:`~repro.api.ExperimentResult` JSON to stdout (machine-readable:
``from_json`` round-trips it bit-identically).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from . import __version__
from .api import (
    ExperimentSpec,
    ProgressEvent,
    Session,
    list_experiments,
)
from .config import ReproConfig, get_config
from .errors import ReproError


def _build_config(args: argparse.Namespace) -> ReproConfig:
    base = get_config()
    replacements = {}
    if args.scale is not None:
        replacements["scale"] = args.scale
    if args.seed is not None:
        replacements["seed"] = args.seed
    if getattr(args, "threads", None) is not None:
        replacements["native_threads"] = args.threads
    return dataclasses.replace(base, **replacements)


def _print_progress(event: ProgressEvent) -> None:
    # stderr, so `run --json -` keeps stdout purely machine-readable.
    print(f"[{event.experiment}/{event.stage}] {event.message}", file=sys.stderr)


def _parse_params(pairs: list[str]) -> dict[str, str]:
    overrides: dict[str, str] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ReproError(
                f"--param expects name=value, got {pair!r}"
            )
        overrides[name] = value
    return overrides


def _format_metric(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value) if isinstance(value, str) else str(value)


def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_experiments()
    if args.json:
        print(json.dumps([spec.describe() for spec in specs], indent=2))
        return 0
    width = max(len(spec.name) for spec in specs)
    print(f"{len(specs)} registered experiments "
          f"(run with: python -m repro run <name>):")
    for spec in specs:
        section = f"{spec.section:>5}" if spec.section else "     "
        print(f"  {spec.name:<{width}}  {section}  {spec.description}")
    return 0


def _describe_params(spec: ExperimentSpec) -> str:
    names = [param.name for param in spec.params]
    return ", ".join(names) if names else "(none)"


def _cmd_run(args: argparse.Namespace) -> int:
    config = _build_config(args)
    session = Session(
        config, cache_dir=args.cache_dir, store=getattr(args, "store", None)
    )
    if not args.quiet:
        session.add_progress(_print_progress)
    overrides = _parse_params(args.param or [])
    result = session.run(args.experiment, **overrides)
    if args.json == "-":
        print(result.to_json())
    else:
        if args.json:
            result.save(args.json)
        print(f"{result.experiment}: done in {result.timings['total']:.2f}s")
        for key, value in result.metrics.items():
            print(f"  {key}: {_format_metric(value)}")
        if args.json:
            print(f"  (result JSON written to {args.json})")
    # Attacks report success; propagate it like the old tkip command did.
    correct = result.metrics.get("correct")
    return 0 if correct in (None, True) else 1


def _api_surface() -> list[tuple[str, str]]:
    """(name, first docstring line) for the public API entry points.

    The ``info`` command surfaces these so the docstring pass is
    discoverable from the CLI, not just from ``help()``.
    """
    from .api import ExperimentResult, Session
    from .capture import run_capture
    from .fleet import fleet_capture
    from .warehouse import RunStore, run_sweep

    surface = [
        ("repro.api.Session", Session),
        ("repro.api.Session.run", Session.run),
        ("repro.api.Session.sweep", Session.sweep),
        ("repro.api.ExperimentResult", ExperimentResult),
        ("repro.capture.run_capture", run_capture),
        ("repro.fleet.fleet_capture", fleet_capture),
        ("repro.warehouse.RunStore", RunStore),
        ("repro.warehouse.run_sweep", run_sweep),
    ]
    lines = []
    for name, obj in surface:
        doc = (obj.__doc__ or "").strip().splitlines()
        lines.append((name, doc[0] if doc else "(undocumented)"))
    return lines


def _cmd_info(args: argparse.Namespace) -> int:
    from .rc4 import _native

    config = _build_config(args)
    specs = list_experiments()
    api = _api_surface()
    if args.json:
        print(json.dumps(
            {
                "version": __version__,
                "scale": config.scale,
                "seed": config.seed,
                "native": config.native,
                "native_threads": config.native_threads,
                "backend": _native.status(),
                "experiments": [spec.describe() for spec in specs],
                "api": [
                    {"name": name, "summary": summary} for name, summary in api
                ],
            },
            indent=2,
        ))
        return 0
    print(f"repro {__version__} — RC4 biases / WPA-TKIP / TLS reproduction")
    print(f"scale={config.scale} seed={config.seed}")
    print(f"backend: {_native.status()}")
    print("subsystems: rc4, stats, biases, datasets, core, net, tkip, tls, "
          "simulate, analysis, capture, fleet, warehouse, api")
    print(f"experiments ({len(specs)} registered):")
    for spec in specs:
        print(f"  {spec.name}: {spec.description} "
              f"[params: {_describe_params(spec)}]")
    print("public API (see help(<name>) for the full docstring):")
    for name, summary in api:
        print(f"  {name}: {summary}")
    print("docs: README.md (usage + Experiment API), docs/architecture.md "
          "(layer map), docs/experiment-atlas.md (paper-figure atlas), "
          "ROADMAP.md, PAPER.md (source paper abstract)")
    return 0


def _cmd_tkip(args: argparse.Namespace) -> int:
    """Alias for ``run attack-tkip`` with the classic two-line summary."""
    config = _build_config(args)
    session = Session(config)
    result = session.run("attack-tkip")
    m = result.metrics
    print(f"captures: {m['captures']}  "
          f"candidate rank: {m['candidate_rank']}  "
          f"correct: {m['correct']}")
    print(f"recovered MIC key: {m['mic_key']}")
    return 0 if m["correct"] else 1


def _cmd_https(args: argparse.Namespace) -> int:
    """Alias for ``run attack-https`` with the classic two-line summary."""
    config = _build_config(args)
    session = Session(config)
    result = session.run("attack-https")
    m = result.metrics
    print(f"requests: {m['num_requests']}  rank: {m['rank']}  "
          f"attempts: {m['attempts']}")
    print(f"recovered cookie: {m['cookie']}")
    return 0


def _parse_grid(pairs: list[str]) -> dict[str, list[str]]:
    """Parse repeated ``--grid name=v1,v2,...`` into value lists.

    Values stay strings; each experiment's declared parameter kind
    coerces them (the same path ``run --param`` takes).
    """
    grid: dict[str, list[str]] = {}
    for pair in pairs:
        name, sep, values = pair.partition("=")
        if not sep or not name:
            raise ReproError(f"--grid expects name=v1,v2,..., got {pair!r}")
        items = [v for v in values.split(",") if v != ""]
        if not items:
            raise ReproError(f"--grid {name!r} has no values")
        grid[name] = items
    return grid


def _query_value(text: str) -> object:
    """Coerce a CLI filter value: JSON literal when it parses, else str."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .warehouse import RunStore, SweepSpec, run_sweep

    config = _build_config(args)
    session = Session(config, cache_dir=args.cache_dir)
    if not args.quiet:
        session.add_progress(_print_progress)
    grid = _parse_grid(args.grid or [])
    base = _parse_params(args.param or [])
    specs = [
        SweepSpec(name, grid=grid, base=base) for name in args.experiments
    ]
    store = RunStore(args.store)

    def progress(plan, status: str) -> None:
        if not args.quiet:
            print(
                f"[sweep] {status}: {plan.experiment} "
                f"{plan.overrides} ({plan.fingerprint[:16]})",
                file=sys.stderr,
            )

    report = run_sweep(session, specs, store, progress=progress)
    counts = report.counts()
    if args.json:
        print(json.dumps(
            {
                "store": str(store.root),
                "counts": counts,
                "outcomes": [
                    {
                        "experiment": o.plan.experiment,
                        "params": o.plan.params,
                        "fingerprint": o.plan.fingerprint,
                        "status": o.status,
                        "error": o.error,
                    }
                    for o in report.outcomes
                ],
            },
            indent=2,
        ))
    else:
        print(f"sweep over {', '.join(args.experiments)}: "
              f"{counts['ran']} ran, {counts['skipped']} skipped, "
              f"{counts['failed']} failed ({len(store)} runs in {store.root})")
        for outcome in report.failed:
            print(f"  failed: {outcome.plan.experiment} "
                  f"{outcome.plan.overrides}: {outcome.error}")
    return 0 if not report.failed else 1


def _store_query_runs(args: argparse.Namespace):
    from .warehouse import RunStore

    store = RunStore(args.store)
    params = {
        name: _query_value(value)
        for name, value in _parse_params(args.param or []).items()
    }
    runs = store.query(
        experiment=args.experiment,
        params=params or None,
        since=args.since,
        until=args.until,
    )
    return store, runs


def _cmd_store_query(args: argparse.Namespace) -> int:
    store, runs = _store_query_runs(args)
    if args.json:
        print(json.dumps([run.to_record() for run in runs], indent=2))
        return 0
    print(f"{len(runs)} of {len(store)} stored runs match")
    for run in runs:
        total = run.result.timings.get("total", 0.0)
        print(f"  {run.fingerprint[:16]}  {run.stored_at_iso}  "
              f"{run.result.experiment}  {run.result.params}  "
              f"({total:.2f}s)")
    return 0


def _cmd_store_report(args: argparse.Namespace) -> int:
    from .analysis import figure_summary, sweep_diff, sweep_table
    from .errors import WarehouseError

    store, runs = _store_query_runs(args)
    if not runs:
        print("no stored runs match the given filters", file=sys.stderr)
        return 1
    metrics = (
        [m for m in args.metric.split(",") if m] if args.metric else None
    )
    title = f"warehouse report: {store.root} ({len(runs)} runs)"
    if args.baseline is not None:
        matches = [
            r for r in store.runs() if r.fingerprint.startswith(args.baseline)
        ]
        if len(matches) != 1:
            raise WarehouseError(
                f"--baseline {args.baseline!r} matches {len(matches)} stored "
                "runs; pass a longer fingerprint prefix"
            )
        print(sweep_diff(runs, matches[0], metrics, title=title))
    else:
        print(sweep_table(runs, metrics, title=title))
    if args.figure:
        parts = args.figure.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(
                f"--figure expects X_PARAM:METRIC[:SERIES_PARAM], "
                f"got {args.figure!r}"
            )
        series = parts[2] if len(parts) == 3 else None
        try:
            figure = figure_summary(
                runs, parts[0], parts[1], series_param=series,
                title=f"{parts[1]} vs {parts[0]}",
            )
        except ValueError as exc:
            raise ReproError(f"--figure: {exc}") from exc
        print()
        print(figure)
    return 0


def _cmd_fleet_worker(args: argparse.Namespace) -> int:
    """Run one pull-based fleet worker over a shared job directory."""
    from .fleet import run_worker

    config = _build_config(args)
    report = run_worker(
        args.job_dir,
        worker_id=args.worker_id,
        config=config,
        max_shards=args.max_shards,
        throttle=args.throttle,
        wait_for_peers=args.wait_for_peers,
    )
    print(json.dumps(report.to_jsonable()))
    return 0 if not report.shards_failed else 1


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """Print the shard state machine of a fleet job directory."""
    from .fleet import Coordinator

    coordinator = Coordinator.open(args.job_dir, config=_build_config(args))
    status = coordinator.status()
    if args.json:
        print(json.dumps(
            {
                "fingerprint": coordinator.manifest.fingerprint,
                "kind": coordinator.manifest.kind,
                "num_shards": len(coordinator.manifest.shards),
                "counts": status.counts,
                "shards": [s.to_jsonable() for s in status.states],
            },
            indent=2,
        ))
        return 0
    counts = status.counts
    print(f"fleet job {args.job_dir} "
          f"[{coordinator.manifest.kind} {coordinator.manifest.fingerprint[:16]}]")
    print("  " + "  ".join(f"{k}: {v}" for k, v in counts.items()))
    for shard in status.states:
        if shard.state != "done":
            detail = f" ({shard.error})" if shard.error else ""
            print(f"  shard {shard.index:>5}: {shard.state} "
                  f"attempts={shard.attempts}{detail}")
    return 0 if status.terminal and not counts["failed"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'All Your Biases Belong To Us' "
        "(RC4 attacks on WPA-TKIP and TLS).",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="sample-count multiplier (overrides REPRO_SCALE)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (overrides REPRO_SEED)")
    parser.add_argument("--threads", type=int, default=None,
                        help="native kernel threads "
                        "(overrides REPRO_NATIVE_THREADS)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate registered experiments")
    p_list.add_argument("--json", action="store_true",
                        help="machine-readable registry dump")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run a registered experiment")
    p_run.add_argument("experiment", help="registry name (see: list)")
    p_run.add_argument("--param", action="append", metavar="NAME=VALUE",
                       help="override an experiment parameter (repeatable)")
    p_run.add_argument("--json", metavar="PATH", default=None,
                       help="write the ExperimentResult JSON to PATH "
                       "('-' prints it to stdout)")
    p_run.add_argument("--cache-dir", default=None,
                       help="on-disk dataset cache directory")
    p_run.add_argument("--store", default=None, metavar="DIR",
                       help="also append the result to this results "
                       "warehouse (created if needed)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress progress output")
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a parameter-grid sweep into a results warehouse",
        description="Expand --grid into a cartesian product of runs for "
        "every listed experiment, persist each result into the warehouse "
        "at --store, and skip any point whose fingerprint is already "
        "stored — re-running a killed sweep resumes where it left off.",
    )
    p_sweep.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                         help="registry names to sweep (see: list)")
    p_sweep.add_argument("--store", required=True, metavar="DIR",
                         help="results-warehouse directory (created if needed)")
    p_sweep.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                         help="parameter values to sweep over (repeatable; "
                         "every listed experiment must declare NAME)")
    p_sweep.add_argument("--param", action="append", metavar="NAME=VALUE",
                         help="fixed override applied to every point "
                         "(repeatable)")
    p_sweep.add_argument("--cache-dir", default=None,
                         help="on-disk dataset cache directory")
    p_sweep.add_argument("--json", action="store_true",
                         help="machine-readable outcome dump")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress progress output")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_store = sub.add_parser(
        "store", help="query and report on a results warehouse"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    def _add_store_filters(p: argparse.ArgumentParser) -> None:
        p.add_argument("store", metavar="DIR",
                       help="results-warehouse directory")
        p.add_argument("--experiment", default=None,
                       help="filter: exact registry name")
        p.add_argument("--param", action="append", metavar="NAME=VALUE",
                       help="filter: parameter subset match (repeatable; "
                       "values parsed as JSON when possible)")
        p.add_argument("--since", default=None, metavar="WHEN",
                       help="filter: stored at/after (ISO date or unix time)")
        p.add_argument("--until", default=None, metavar="WHEN",
                       help="filter: stored at/before (ISO date or unix time)")

    p_query = store_sub.add_parser(
        "query", help="list stored runs matching filters"
    )
    _add_store_filters(p_query)
    p_query.add_argument("--json", action="store_true",
                         help="full stored records as JSON")
    p_query.set_defaults(func=_cmd_store_query)

    p_report = store_sub.add_parser(
        "report",
        help="comparison table (and optional figure) from stored runs",
        description="Tabulate metric cells across the stored runs matching "
        "the filters. Cells are rendered in canonical JSON — bit-identical "
        "to the stored ExperimentResult records.",
    )
    _add_store_filters(p_report)
    p_report.add_argument("--metric", default=None, metavar="M1,M2,...",
                          help="metrics to tabulate (default: all)")
    p_report.add_argument("--baseline", default=None, metavar="FINGERPRINT",
                          help="diff every run against this stored run "
                          "(fingerprint prefix)")
    p_report.add_argument("--figure", default=None,
                          metavar="X_PARAM:METRIC[:SERIES_PARAM]",
                          help="also regenerate an ASCII figure from the "
                          "matched runs")
    p_report.set_defaults(func=_cmd_store_report)

    p_info = sub.add_parser("info", help="version, config, and inventory")
    p_info.add_argument("--json", action="store_true",
                        help="machine-readable info dump")
    p_info.set_defaults(func=_cmd_info)

    sub.add_parser("tkip", help="run the scaled §5 attack "
                   "(alias: run attack-tkip)").set_defaults(func=_cmd_tkip)
    sub.add_parser("https", help="run the scaled §6 attack "
                   "(alias: run attack-https)").set_defaults(func=_cmd_https)

    p_worker = sub.add_parser(
        "fleet-worker",
        help="claim and capture shards from a fleet job directory",
    )
    p_worker.add_argument("job_dir", help="directory holding manifest.json")
    p_worker.add_argument("--worker-id", default=None,
                          help="stable worker identity (default: host:pid)")
    p_worker.add_argument("--max-shards", type=int, default=None,
                          help="stop after completing this many shards")
    p_worker.add_argument("--throttle", type=float, default=0.0,
                          help="extra seconds to sleep after each batch "
                          "(rate-limit-aware pacing)")
    p_worker.add_argument("--wait-for-peers", action="store_true",
                          help="keep polling while peers hold live leases "
                          "instead of exiting when nothing is claimable")
    p_worker.set_defaults(func=_cmd_fleet_worker)

    from .fleet import STATE_DESCRIPTIONS

    state_lines = "\n".join(
        f"  {state:<8} {description}"
        for state, description in STATE_DESCRIPTIONS.items()
    )
    p_status = sub.add_parser(
        "fleet-status",
        help="show shard states of a fleet job directory",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="shard states (pending -> leased -> done | failed):\n"
        f"{state_lines}\n"
        "See README.md's failure matrix for the recovery behaviour "
        "behind each transition.",
    )
    p_status.add_argument("job_dir", help="directory holding manifest.json")
    p_status.add_argument("--json", action="store_true",
                          help="machine-readable status dump")
    p_status.set_defaults(func=_cmd_fleet_status)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
