"""ASCII curves and CSV emission for figure reproduction.

Every figure benchmark emits its series as CSV (machine-checkable) and an
ASCII sketch (human-scannable in the bench log).
"""

from __future__ import annotations

from typing import Sequence


def ascii_curve(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Plot one or more y-series against a shared x-axis, ASCII-style."""
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        for x, y in zip(x_values, ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.4g}, {y_max:.4g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_min:.4g}, {x_max:.4g}]")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def series_to_csv(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
) -> str:
    """Emit series as CSV text with a header row."""
    headers = [x_label] + list(series.keys())
    lines = [",".join(headers)]
    for i, x in enumerate(x_values):
        row = [str(x)] + [repr(float(values[i])) for values in series.values()]
        lines.append(",".join(row))
    return "\n".join(lines)
