"""Paper-style rendering of results: tables, ASCII figures, CSV series.

Also the reporting surface of the results warehouse: sweep tables,
baseline diffs, figure regeneration, and binomial-CI fidelity checks
(see :mod:`repro.analysis.report`).
"""

from .figures import ascii_curve, series_to_csv
from .report import (
    CiCheck,
    SurfaceCheck,
    assert_within_ci,
    bias_comparison_table,
    check_surface_within_ci,
    check_within_ci,
    fidelity_table,
    figure_summary,
    metric_cell,
    probability_notation,
    success_rate_table,
    surface_table,
    sweep_diff,
    sweep_table,
    varying_params,
)

__all__ = [
    "CiCheck",
    "SurfaceCheck",
    "ascii_curve",
    "assert_within_ci",
    "bias_comparison_table",
    "check_surface_within_ci",
    "check_within_ci",
    "fidelity_table",
    "figure_summary",
    "metric_cell",
    "probability_notation",
    "series_to_csv",
    "success_rate_table",
    "surface_table",
    "sweep_diff",
    "sweep_table",
    "varying_params",
]
