"""Paper-style rendering of results: tables, ASCII figures, CSV series."""

from .figures import ascii_curve, series_to_csv
from .report import (
    bias_comparison_table,
    probability_notation,
    success_rate_table,
)

__all__ = [
    "ascii_curve",
    "bias_comparison_table",
    "probability_notation",
    "series_to_csv",
    "success_rate_table",
]
