"""Textual result reporting in the paper's notation.

Benchmarks print measured probabilities next to the paper's, in the same
``2^a (1 ± 2^b)`` notation the tables use, so paper-vs-measured rows can be
read against the original directly.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..utils.tables import format_table


def probability_notation(probability: float, baseline: float) -> str:
    """Render a probability as ``2^a (1 ± 2^b)`` relative to a baseline.

    ``a = log2(baseline)``; ``b = log2(|probability/baseline - 1|)``.
    """
    if probability <= 0.0 or baseline <= 0.0:
        raise ValueError("probability and baseline must be positive")
    base_exp = math.log2(baseline)
    rel = probability / baseline - 1.0
    if rel == 0.0:
        return f"2^{base_exp:.5f}"
    sign = "+" if rel > 0 else "-"
    return f"2^{base_exp:.5f} (1 {sign} 2^{math.log2(abs(rel)):.3f})"


def bias_comparison_table(
    rows: Sequence[tuple[str, float, float, float]],
    *,
    title: str | None = None,
) -> str:
    """Table comparing paper vs measured probabilities.

    Args:
        rows: (label, paper_probability, measured_probability, baseline).
    """
    formatted = []
    for label, paper_p, measured_p, baseline in rows:
        q_paper = paper_p / baseline - 1.0
        q_measured = measured_p / baseline - 1.0
        agree = "yes" if (q_paper == 0 or q_paper * q_measured > 0) else "NO"
        formatted.append(
            (
                label,
                probability_notation(paper_p, baseline),
                probability_notation(measured_p, baseline),
                agree,
            )
        )
    return format_table(
        ["bias", "paper", "measured", "sign agrees"], formatted, title=title
    )


def success_rate_table(
    x_label: str,
    series: dict[str, Sequence[float]],
    x_values: Sequence[object],
    *,
    title: str | None = None,
) -> str:
    """Table of success-rate curves (the paper's Fig 7/8/10 as rows)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(f"{100.0 * values[i]:.1f}%")
        rows.append(row)
    return format_table(headers, rows, title=title)
