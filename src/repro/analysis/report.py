"""Textual result reporting in the paper's notation.

Benchmarks print measured probabilities next to the paper's, in the same
``2^a (1 ± 2^b)`` notation the tables use, so paper-vs-measured rows can be
read against the original directly.

The module also renders the results warehouse (:mod:`repro.warehouse`):
:func:`sweep_table` tabulates metric cells across stored runs,
:func:`sweep_diff` diffs them against a baseline run, and
:func:`figure_summary` regenerates figure-style curves from a sweep.
Metric cells are rendered with :func:`metric_cell` — the canonical-JSON
form of the stored value — so a regenerated table cell is bit-identical
to the substring inside the stored ``ExperimentResult`` record.
:func:`check_within_ci` / :func:`assert_within_ci` hold measured counts
to binomial confidence intervals around model probabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

from ..utils.serialization import canonical_json, to_jsonable
from ..utils.tables import format_table
from .figures import ascii_curve


def probability_notation(probability: float, baseline: float) -> str:
    """Render a probability as ``2^a (1 ± 2^b)`` relative to a baseline.

    ``a = log2(baseline)``; ``b = log2(|probability/baseline - 1|)``.
    """
    if probability <= 0.0 or baseline <= 0.0:
        raise ValueError("probability and baseline must be positive")
    base_exp = math.log2(baseline)
    rel = probability / baseline - 1.0
    if rel == 0.0:
        return f"2^{base_exp:.5f}"
    sign = "+" if rel > 0 else "-"
    return f"2^{base_exp:.5f} (1 {sign} 2^{math.log2(abs(rel)):.3f})"


def bias_comparison_table(
    rows: Sequence[tuple[str, float, float, float]],
    *,
    title: str | None = None,
) -> str:
    """Table comparing paper vs measured probabilities.

    Args:
        rows: (label, paper_probability, measured_probability, baseline).
    """
    formatted = []
    for label, paper_p, measured_p, baseline in rows:
        q_paper = paper_p / baseline - 1.0
        q_measured = measured_p / baseline - 1.0
        agree = "yes" if (q_paper == 0 or q_paper * q_measured > 0) else "NO"
        formatted.append(
            (
                label,
                probability_notation(paper_p, baseline),
                probability_notation(measured_p, baseline),
                agree,
            )
        )
    return format_table(
        ["bias", "paper", "measured", "sign agrees"], formatted, title=title
    )


def success_rate_table(
    x_label: str,
    series: dict[str, Sequence[float]],
    x_values: Sequence[object],
    *,
    title: str | None = None,
) -> str:
    """Table of success-rate curves (the paper's Fig 7/8/10 as rows)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(f"{100.0 * values[i]:.1f}%")
        rows.append(row)
    return format_table(headers, rows, title=title)


# ---------------------------------------------------------------------------
# Binomial confidence-interval checks (measured vs model).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CiCheck:
    """Verdict of one binomial confidence-interval check.

    Attributes:
        observed / trials / p / z: the inputs.
        expected: ``trials * p``.
        sd: binomial standard deviation ``sqrt(trials * p * (1 - p))``.
        deviation: ``(observed - expected) / sd`` — signed sigmas.
        ok: ``abs(deviation) <= z``.
    """

    observed: int
    trials: int
    p: float
    z: float
    expected: float
    sd: float
    deviation: float
    ok: bool


def check_within_ci(
    observed: int, trials: int, p: float, *, z: float = 4.0
) -> CiCheck:
    """Check an observed count against the binomial z-sigma CI.

    Under H0 "successes ~ Binomial(trials, p)", the count deviates from
    ``trials * p`` by more than ``z * sqrt(trials * p * (1 - p))`` with
    probability ~``2 * Phi(-z)`` (about 6e-5 at the default z=4).

        >>> check_within_ci(530, 1000, 0.5).ok
        True
        >>> check_within_ci(700, 1000, 0.5).ok
        False

    Raises:
        ValueError: ``p`` outside the open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"reference probability must be in (0, 1), got {p}")
    expected = trials * p
    sd = math.sqrt(trials * p * (1.0 - p))
    deviation = (observed - expected) / sd
    return CiCheck(
        observed=observed,
        trials=trials,
        p=p,
        z=z,
        expected=expected,
        sd=sd,
        deviation=deviation,
        ok=abs(deviation) <= z,
    )


def assert_within_ci(
    observed: int,
    trials: int,
    p: float,
    *,
    z: float = 4.0,
    label: str = "",
) -> None:
    """Assert an observed count sits inside the binomial z-sigma CI.

    The raising form of :func:`check_within_ci`; the statistical-fidelity
    test suite and the warehouse fidelity reports both hold claims to it.
    """
    verdict = check_within_ci(observed, trials, p, z=z)
    assert verdict.ok, (
        f"{label or 'observed count'}: {observed} is "
        f"{verdict.deviation:+.2f} sd from the expected "
        f"{verdict.expected:.1f} (Binomial({trials}, {p:.3e}), "
        f"allowed |z| <= {z})"
    )


@dataclass(frozen=True)
class SurfaceCheck:
    """Verdict of a whole success-surface binomial fit.

    Attributes:
        cells: per-cell verdicts keyed by the cell label.
        ok: every cell within its CI.
        worst_label / worst_deviation: the cell furthest from its model
            expectation (signed sigmas; 0.0 for an empty surface).
    """

    cells: dict[str, CiCheck]
    ok: bool
    worst_label: str | None
    worst_deviation: float


def _degenerate_ci(observed: int, trials: int, p: float, z: float) -> CiCheck:
    """CI verdict at p in {0, 1}: the binomial is a point mass."""
    expected = trials * p
    exact = observed == int(round(expected))
    return CiCheck(
        observed=observed,
        trials=trials,
        p=p,
        z=z,
        expected=expected,
        sd=0.0,
        deviation=0.0 if exact else math.inf,
        ok=exact,
    )


def check_surface_within_ci(
    cells: dict[str, tuple[int, int, float]], *, z: float = 4.0
) -> SurfaceCheck:
    """Fit a whole success surface to per-cell binomial CIs.

    The surface form of :func:`check_within_ci`: each cell is an
    ``(observed, trials, reference_p)`` triple (one (browser, charset,
    regime) population cell of a campaign, say), checked against its own
    binomial z-sigma interval.  Reference probabilities of exactly 0 or
    1 are allowed — the binomial degenerates to a point mass, so the
    cell passes iff the count is exact.  The aggregate verdict is the
    conjunction; an empty surface passes vacuously.
    """
    verdicts: dict[str, CiCheck] = {}
    worst_label: str | None = None
    worst = 0.0
    for label, (observed, trials, p) in cells.items():
        if 0.0 < p < 1.0:
            verdict = check_within_ci(observed, trials, p, z=z)
        elif p in (0.0, 1.0):
            verdict = _degenerate_ci(observed, trials, p, z)
        else:
            raise ValueError(
                f"cell {label!r}: reference probability must be in [0, 1], "
                f"got {p}"
            )
        verdicts[label] = verdict
        if worst_label is None or abs(verdict.deviation) > abs(worst):
            worst_label = label
            worst = verdict.deviation
    return SurfaceCheck(
        cells=verdicts,
        ok=all(v.ok for v in verdicts.values()),
        worst_label=worst_label,
        worst_deviation=worst,
    )


#: Shade ramp for ascii heat cells, darkest-last (0.0 -> ' ', 1.0 -> '@').
_HEAT_RAMP = " .:-=+*#%@"


def _heat_char(value: float, lo: float, hi: float) -> str:
    if not math.isfinite(value):
        return "?"
    if hi <= lo:
        return _HEAT_RAMP[-1]
    frac = (value - lo) / (hi - lo)
    index = min(len(_HEAT_RAMP) - 1, max(0, int(frac * len(_HEAT_RAMP))))
    return _HEAT_RAMP[index]


def surface_table(
    surface: dict[tuple[Any, Any], float],
    *,
    row_label: str = "row",
    col_label: str = "col",
    fmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render a 2-D metric surface as an ascii heat table.

    One row per distinct first key component, one column per distinct
    second component; each cell shows the formatted value plus a shade
    character scaled to the surface's own range (min -> ' ', max -> '@'),
    so gradients read at a glance in plain text — the campaign-surface
    analogue of the paper's Fig 8/10 success grids.
    """
    if not surface:
        raise ValueError("surface_table needs at least one cell")
    rows = sorted({r for r, _ in surface}, key=str)
    cols = sorted({c for _, c in surface}, key=str)
    finite = [v for v in surface.values() if math.isfinite(v)]
    lo = min(finite) if finite else 0.0
    hi = max(finite) if finite else 0.0
    headers = [f"{row_label} \\ {col_label}"] + [str(c) for c in cols]
    body = []
    for r in rows:
        line: list[object] = [str(r)]
        for c in cols:
            if (r, c) in surface:
                value = surface[(r, c)]
                line.append(f"{fmt.format(value)} {_heat_char(value, lo, hi)}")
            else:
                line.append("-")
        body.append(line)
    return format_table(headers, body, title=title)


def fidelity_table(
    rows: Sequence[tuple[str, int, int, float]],
    *,
    z: float = 4.0,
    title: str | None = None,
) -> str:
    """Table holding measured counts to binomial CIs around model values.

    Args:
        rows: ``(label, observed, trials, model_probability)`` per claim.
        z: allowed deviation in binomial standard deviations.
    """
    formatted = []
    for label, observed, trials, p in rows:
        verdict = check_within_ci(observed, trials, p, z=z)
        formatted.append(
            (
                label,
                observed,
                f"{verdict.expected:.1f}",
                f"{verdict.deviation:+.2f}",
                "ok" if verdict.ok else "FAIL",
            )
        )
    return format_table(
        ["claim", "observed", "expected", "sigma", f"|z| <= {z:g}"],
        formatted,
        title=title,
    )


# ---------------------------------------------------------------------------
# Warehouse sweep reports.
# ---------------------------------------------------------------------------


def _result_of(run: Any) -> Any:
    """Accept either a StoredRun or a bare ExperimentResult."""
    return getattr(run, "result", run)


def metric_cell(value: Any) -> str:
    """Render one stored value exactly as the record serialises it.

    Canonical JSON of the value — byte-for-byte the substring that
    appears in the stored ``ExperimentResult`` record, so regenerated
    report cells can be diffed against the warehouse index directly.
    """
    return canonical_json(value)


def varying_params(runs: Sequence[Any]) -> list[str]:
    """Parameter names whose values differ across the given runs."""
    results = [_result_of(run) for run in runs]
    names = sorted({name for r in results for name in r.params})
    varying = []
    for name in names:
        cells = {
            canonical_json(r.params.get(name)) if name in r.params else None
            for r in results
        }
        if len(cells) > 1:
            varying.append(name)
    return varying


def sweep_table(
    runs: Sequence[Any],
    metrics: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Tabulate metric cells across stored runs of a sweep.

    One row per run: the experiment name, every parameter that varies
    across the sweep, then the requested metrics (default: every metric
    any run reports).  Cells come from :func:`metric_cell`, so each is
    bit-identical to the stored record.
    """
    if not runs:
        raise ValueError("sweep_table needs at least one run")
    results = [_result_of(run) for run in runs]
    if metrics is None:
        metrics = sorted({name for r in results for name in r.metrics})
    axes = varying_params(runs)
    headers = ["experiment"] + list(axes) + list(metrics)
    rows = []
    for r in results:
        row: list[object] = [r.experiment]
        for name in axes:
            row.append(metric_cell(r.params[name]) if name in r.params else "-")
        for name in metrics:
            row.append(
                metric_cell(r.metrics[name]) if name in r.metrics else "-"
            )
        rows.append(row)
    return format_table(headers, rows, title=title)


def sweep_diff(
    runs: Sequence[Any],
    baseline: Any,
    metrics: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Diff metric cells of stored runs against a baseline run.

    Numeric metrics get a signed delta column; non-numeric ones are
    marked ``same`` / ``DIFFERS``.  Cells render via :func:`metric_cell`.
    """
    if not runs:
        raise ValueError("sweep_diff needs at least one run")
    base = _result_of(baseline)
    results = [_result_of(run) for run in runs]
    if metrics is None:
        metrics = sorted(
            {name for r in results for name in r.metrics} & set(base.metrics)
        )
    axes = varying_params([baseline, *runs])
    headers = ["experiment"] + list(axes)
    for name in metrics:
        headers += [name, f"Δ{name}"]
    rows = []
    for r in results:
        row: list[object] = [r.experiment]
        for name in axes:
            row.append(metric_cell(r.params[name]) if name in r.params else "-")
        for name in metrics:
            ours = r.metrics.get(name)
            theirs = base.metrics.get(name)
            row.append(metric_cell(ours) if name in r.metrics else "-")
            if name not in r.metrics or name not in base.metrics:
                row.append("-")
            elif isinstance(ours, (int, float)) and not isinstance(
                ours, bool
            ) and isinstance(theirs, (int, float)) and not isinstance(
                theirs, bool
            ):
                delta = ours - theirs
                row.append(f"{delta:+.6g}" if delta else "0")
            else:
                same = to_jsonable(ours) == to_jsonable(theirs)
                row.append("same" if same else "DIFFERS")
        rows.append(row)
    return format_table(headers, rows, title=title)


def figure_summary(
    runs: Sequence[Any],
    x_param: str,
    metric: str,
    *,
    series_param: str | None = None,
    surface_param: str | None = None,
    width: int = 64,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Regenerate a figure-style ASCII summary from stored sweep runs.

    Plots ``metric`` against the numeric parameter ``x_param``; when
    ``series_param`` is given, one curve per distinct value of it (the
    shape of the paper's Fig 7/8/10 success-rate families).  When
    ``surface_param`` is given instead, the runs span a 2-D grid and the
    metric renders as an ascii heat table (:func:`surface_table`) with
    ``surface_param`` values as rows and ``x_param`` values as columns —
    the campaign success-surface view.
    """
    if surface_param is not None:
        if series_param is not None:
            raise ValueError(
                "pass series_param or surface_param, not both"
            )
        surface: dict[tuple[Any, Any], float] = {}
        for run in runs:
            r = _result_of(run)
            if (
                x_param not in r.params
                or surface_param not in r.params
                or metric not in r.metrics
            ):
                continue
            key = (
                metric_cell(r.params[surface_param]),
                metric_cell(r.params[x_param]),
            )
            surface[key] = float(r.metrics[metric])
        if not surface:
            raise ValueError(
                f"no stored run has params {surface_param!r}/{x_param!r} "
                f"and metric {metric!r}"
            )
        return surface_table(
            surface,
            row_label=surface_param,
            col_label=x_param,
            title=title or metric,
        )
    groups: dict[str, list[tuple[float, float]]] = {}
    for run in runs:
        r = _result_of(run)
        if x_param not in r.params or metric not in r.metrics:
            continue
        if series_param is None:
            key = metric
        elif series_param in r.params:
            key = f"{series_param}={metric_cell(r.params[series_param])}"
        else:
            continue
        groups.setdefault(key, []).append(
            (float(r.params[x_param]), float(r.metrics[metric]))
        )
    if not groups:
        raise ValueError(
            f"no stored run has param {x_param!r} and metric {metric!r}"
        )
    lengths = {len(points) for points in groups.values()}
    if len(lengths) > 1:
        raise ValueError(
            "series have differing point counts; sweep the same "
            f"{x_param!r} grid for every series value"
        )
    x_values: list[float] = []
    series: dict[str, list[float]] = {}
    for key, points in groups.items():
        points.sort()
        xs = [x for x, _ in points]
        if not x_values:
            x_values = xs
        elif xs != x_values:
            raise ValueError(f"series {key!r} covers different {x_param!r} values")
        series[key] = [y for _, y in points]
    return ascii_curve(
        x_values, series, width=width, height=height, title=title
    )
