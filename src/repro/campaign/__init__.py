"""Million-victim campaign simulator.

Samples heterogeneous victim populations (browser layout × cookie
alphabet × reconnect cadence × injection budget), groups victims that
share a keystream regime so RC4 generation is paid once per group via
the multi-template capture sources, and reduces each campaign to
per-cell success-rate and time-to-first-recovery surfaces.
"""

from .campaign import (
    HTTPS_AXES,
    TKIP_AXES,
    CampaignResult,
    HttpsGroup,
    TkipGroup,
    VictimOutcome,
    plan_https_groups,
    plan_tkip_groups,
    run_https_campaign,
    run_tkip_campaign,
    split_population,
)
from .population import (
    DEFAULT_BROWSERS,
    DEFAULT_BUDGETS,
    DEFAULT_CHARSETS,
    DEFAULT_RECONNECT_REGIMES,
    Population,
    VictimSpec,
)

__all__ = [
    "DEFAULT_BROWSERS",
    "DEFAULT_BUDGETS",
    "DEFAULT_CHARSETS",
    "DEFAULT_RECONNECT_REGIMES",
    "HTTPS_AXES",
    "TKIP_AXES",
    "CampaignResult",
    "HttpsGroup",
    "Population",
    "TkipGroup",
    "VictimOutcome",
    "VictimSpec",
    "plan_https_groups",
    "plan_tkip_groups",
    "run_https_campaign",
    "run_tkip_campaign",
    "split_population",
]
