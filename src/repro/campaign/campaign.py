"""Campaign orchestration: regime grouping, capture, per-victim attacks.

A campaign partitions the population by *keystream regime* — the axes
that determine the shared keystream schedule: (browser layout,
reconnect cadence) on the TLS side, packets-per-TSC budget on the TKIP
side — then chunks each regime into groups of at most ``group_size``
victims and runs one multi-template capture per group
(:class:`~repro.capture.MultiHttpsCaptureSource` /
:class:`~repro.capture.MultiTkipCaptureSource`): the expensive RC4
keystream generation is paid once per group, each victim folds only its
own template.

Grouping is canonical — victims sorted by index inside each regime,
regimes sorted by key — so group membership and key-derivation labels
are invariant under population permutation, and any single victim can
be reproduced bit-exactly by a single-template capture with its group's
label (tests/test_campaign.py holds both properties).

Group captures ride :func:`repro.capture.run_capture`: resumable via a
per-group checkpoint NPZ plus a per-group outcome record inside
``checkpoint_dir``, and `distributed=N`-capable through the fleet
coordinator.  Each finished group is immediately reduced to per-victim
:class:`VictimOutcome` records (success, candidate rank,
time-to-first-recovery) and its counter banks are dropped, bounding
peak memory by the group size, not the population size.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from ..analysis.report import SurfaceCheck, check_surface_within_ci
from ..config import ReproConfig
from ..errors import AttackError, CampaignError
from ..simulate.https import HttpsAttackSimulation
from ..simulate.timing import tkip_timeline, tls_timeline
from ..simulate.wifi import WifiAttackSimulation
from ..tls.attack import recover_candidates
from ..tls.cookies import charset as charset_by_name
from ..utils.serialization import canonical_json
from .population import Population, VictimSpec

#: Axis names of the two campaign kinds' success surfaces.
HTTPS_AXES = ("browser", "charset", "reconnect_every")
TKIP_AXES = ("packets_per_tsc",)


def split_population(
    victims: Sequence[VictimSpec], num_groups: int
) -> list[list[VictimSpec]]:
    """Contiguous near-even victim groups, shard_batches-style.

    ``num_groups`` is clamped to the population size, so a population
    smaller than the requested group count yields fewer groups rather
    than empty ones, and an empty population yields no groups at all —
    the same edge-case contract :func:`repro.capture.shard_batches`
    gives batch ranges.
    """
    if num_groups < 0:
        raise CampaignError(f"num_groups must be >= 0, got {num_groups}")
    count = len(victims)
    num_groups = min(num_groups, count)
    if count == 0 or num_groups == 0:
        return []
    bounds = [
        count * g // num_groups for g in range(num_groups + 1)
    ]
    return [
        list(victims[bounds[g] : bounds[g + 1]]) for g in range(num_groups)
    ]


@dataclass(frozen=True)
class VictimOutcome:
    """Per-victim campaign verdict.

    Attributes:
        victim_id: the population member.
        cell: success-surface cell values, parallel to the campaign's
            axes tuple.
        success: whether the secret was recovered within the candidate
            budget.
        rank: 0-based candidate rank of the truth (None on failure).
        num_samples: ciphertexts captured for this victim.
        hours: projected wall-clock to first recovery at paper rates
            (capture plus candidate search down to the truth's rank);
            None on failure.
    """

    victim_id: str
    cell: tuple
    success: bool
    rank: int | None
    num_samples: int
    hours: float | None

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "victim_id": self.victim_id,
            "cell": list(self.cell),
            "success": self.success,
            "rank": self.rank,
            "num_samples": self.num_samples,
            "hours": self.hours,
        }

    @classmethod
    def from_jsonable(cls, fields: dict[str, Any]) -> "VictimOutcome":
        return cls(
            victim_id=str(fields["victim_id"]),
            cell=tuple(fields["cell"]),
            success=bool(fields["success"]),
            rank=None if fields["rank"] is None else int(fields["rank"]),
            num_samples=int(fields["num_samples"]),
            hours=None if fields["hours"] is None else float(fields["hours"]),
        )


@dataclass
class CampaignResult:
    """Everything a campaign run produces (counters already reduced).

    Attributes:
        kind: "https" or "tkip".
        label: the population label.
        axes: names of the success-surface dimensions.
        outcomes: one record per victim, population order.
        num_groups: shared-keystream groups the campaign ran.
    """

    kind: str
    label: str
    axes: tuple[str, ...]
    outcomes: list[VictimOutcome]
    num_groups: int = 0

    @property
    def trials(self) -> int:
        return len(self.outcomes)

    @property
    def successes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.success)

    def success_surface(self) -> dict[tuple, dict[str, Any]]:
        """Per-cell success statistics keyed by the axes values."""
        cells: dict[tuple, dict[str, Any]] = {}
        for outcome in self.outcomes:
            cell = cells.setdefault(
                outcome.cell,
                {"successes": 0, "trials": 0, "hours": []},
            )
            cell["trials"] += 1
            if outcome.success:
                cell["successes"] += 1
                cell["hours"].append(outcome.hours)
        surface = {}
        for key, cell in sorted(cells.items(), key=lambda kv: str(kv[0])):
            hours = cell.pop("hours")
            cell["rate"] = cell["successes"] / cell["trials"]
            cell["mean_hours"] = (
                float(sum(hours) / len(hours)) if hours else None
            )
            surface[key] = cell
        return surface

    def surface_fit(
        self, reference: float | None = None, *, z: float = 4.0
    ) -> SurfaceCheck:
        """Fit every cell to a binomial CI around ``reference``.

        ``reference=None`` uses the pooled campaign success rate — a
        homogeneity verdict across the surface; pass a calibrated
        probability to fit against an external model instead.
        """
        if reference is None:
            reference = self.successes / self.trials if self.trials else 0.0
        cells = {
            "/".join(str(v) for v in key): (
                cell["successes"], cell["trials"], reference
            )
            for key, cell in self.success_surface().items()
        }
        return check_surface_within_ci(cells, z=z)

    def heat_cells(
        self, metric: str = "rate"
    ) -> dict[tuple[str, str], float]:
        """The surface flattened to 2-D for :func:`~repro.analysis
        .surface_table`: last axis as columns, the rest joined as rows."""
        cells = {}
        for key, cell in self.success_surface().items():
            if cell.get(metric) is None:
                continue
            row = "/".join(str(v) for v in key[:-1]) or self.axes[0]
            cells[(row, str(key[-1]))] = float(cell[metric])
        return cells

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "label": self.label,
            "axes": list(self.axes),
            "num_groups": self.num_groups,
            "trials": self.trials,
            "successes": self.successes,
            "outcomes": [outcome.to_jsonable() for outcome in self.outcomes],
        }


# ---------------------------------------------------------------------------
# Shared capture plumbing.
# ---------------------------------------------------------------------------


def _grouped(
    victims: Sequence[VictimSpec], key: Callable[[VictimSpec], tuple],
    group_size: int,
) -> list[tuple[tuple, int, list[VictimSpec]]]:
    """Canonical (regime_key, chunk_index, victims) triples.

    Victims are bucketed by regime key, sorted by index inside each
    bucket, and chunked into at most ``group_size``-victim groups —
    membership depends only on each victim's identity, never on the
    order the population was supplied in.
    """
    if group_size < 1:
        raise CampaignError(f"group_size must be >= 1, got {group_size}")
    buckets: dict[tuple, list[VictimSpec]] = {}
    for spec in victims:
        buckets.setdefault(key(spec), []).append(spec)
    groups = []
    for regime in sorted(buckets, key=str):
        members = sorted(buckets[regime], key=lambda s: s.index)
        chunks = split_population(
            members, math.ceil(len(members) / group_size)
        )
        for chunk_index, chunk in enumerate(chunks):
            groups.append((regime, chunk_index, chunk))
    return groups


def _capture_group(
    source,
    tag: str,
    *,
    config: ReproConfig,
    checkpoint_dir: str | Path | None,
    checkpoint_every: int,
    distributed: int,
    job_dir: str | Path | None,
    progress,
):
    """One group's statistics via the engine, a checkpoint, or the fleet."""
    from ..capture import run_capture

    if distributed:
        from ..fleet import fleet_capture

        group_dir = Path(job_dir) / tag if job_dir else None
        if group_dir is None:
            import tempfile

            group_dir = tempfile.mkdtemp(prefix=f"repro-campaign-{tag}-")
        workers = config.fleet_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, distributed))
        stats, _report = fleet_capture(
            source,
            group_dir,
            num_shards=distributed,
            workers=workers,
            config=config,
        )
        return stats
    checkpoint_path = (
        Path(checkpoint_dir) / f"{tag}.npz" if checkpoint_dir else None
    )
    return run_capture(
        source,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        progress=progress,
    )


def _load_done(
    checkpoint_dir: str | Path | None, tag: str, fingerprint: str
) -> list[VictimOutcome] | None:
    """Reuse a finished group's outcomes from a previous campaign run."""
    if checkpoint_dir is None:
        return None
    path = Path(checkpoint_dir) / f"{tag}.done.json"
    if not path.exists():
        return None
    record = json.loads(path.read_text())
    if record.get("fingerprint") != fingerprint:
        raise CampaignError(
            f"{path} records a different capture campaign — "
            "clear the checkpoint directory or fix the parameters"
        )
    return [
        VictimOutcome.from_jsonable(fields) for fields in record["outcomes"]
    ]


def _store_done(
    checkpoint_dir: str | Path | None,
    tag: str,
    fingerprint: str,
    outcomes: Sequence[VictimOutcome],
) -> None:
    if checkpoint_dir is None:
        return
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{tag}.done.json"
    tmp = directory / f"{tag}.done.tmp.json"
    tmp.write_text(
        canonical_json(
            {
                "fingerprint": fingerprint,
                "outcomes": [outcome.to_jsonable() for outcome in outcomes],
            }
        )
    )
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# HTTPS campaigns (§6 at fleet scale).
# ---------------------------------------------------------------------------


@dataclass
class HttpsGroup:
    """One shared-keystream HTTPS capture group."""

    tag: str
    specs: list[VictimSpec]
    sims: dict[str, HttpsAttackSimulation]
    source: Any

    @property
    def label(self) -> str:
        return self.source.label


def plan_https_groups(
    config: ReproConfig,
    population: Population,
    *,
    num_requests: int,
    cookie_len: int = 2,
    max_gap: int = 4,
    batch_size: int = 4096,
    group_size: int = 8,
) -> list[HttpsGroup]:
    """Expand a population into shared-keystream capture groups.

    Exposed separately so tests can rebuild any group member as a
    single-template :class:`~repro.capture.HttpsCaptureSource` with the
    group's label and assert bit-identical counters.
    """
    from ..capture import MultiHttpsCaptureSource

    groups = []
    for (browser, reconnect_every), chunk_index, chunk in _grouped(
        population.victims,
        lambda spec: (spec.browser, spec.reconnect_every),
        group_size,
    ):
        sims = {
            spec.victim_id: HttpsAttackSimulation(
                replace(config, seed=spec.seed),
                cookie_len=cookie_len,
                max_gap=max_gap,
                browser=spec.browser,
                charset=spec.charset,
            )
            for spec in chunk
        }
        layouts = {sim.layout for sim in sims.values()}
        if len(layouts) != 1:
            raise CampaignError(
                f"group {browser}/r{reconnect_every} mixes request "
                "layouts — victims sharing a keystream regime must share "
                "a layout"
            )
        tag = f"https-{browser}-r{reconnect_every}-g{chunk_index:04d}"
        source = MultiHttpsCaptureSource(
            config=config,
            layout=next(iter(layouts)),
            templates=tuple(
                sims[spec.victim_id].campaign.request_plaintext()
                for spec in chunk
            ),
            victim_ids=tuple(spec.victim_id for spec in chunk),
            num_requests=num_requests,
            batch_size=batch_size,
            reconnect_every=reconnect_every,
            max_gap=max_gap,
            label=f"{population.label}/{tag}",
        )
        groups.append(
            HttpsGroup(tag=tag, specs=list(chunk), sims=sims, source=source)
        )
    return groups


def run_https_campaign(
    config: ReproConfig,
    population: Population,
    *,
    num_requests: int,
    cookie_len: int = 2,
    num_candidates: int = 256,
    max_gap: int = 4,
    batch_size: int = 4096,
    group_size: int = 8,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 16,
    distributed: int = 0,
    job_dir: str | Path | None = None,
    progress=None,
    on_group: Callable[[int, int, str], None] | None = None,
) -> CampaignResult:
    """The §6 attack over a whole victim population.

    Victims sharing (browser, reconnect regime) share keystream batches;
    each victim's statistics feed the standard Algorithm 2 recovery and
    score a (browser, charset, reconnect regime) success-surface cell.
    An empty population yields an empty result, not an exception.
    """
    if distributed and checkpoint_dir:
        raise CampaignError(
            "the fleet manages its own per-shard checkpoints; "
            "drop checkpoint_dir for distributed campaigns"
        )
    groups = plan_https_groups(
        config,
        population,
        num_requests=num_requests,
        cookie_len=cookie_len,
        max_gap=max_gap,
        batch_size=batch_size,
        group_size=group_size,
    )
    outcomes: dict[str, VictimOutcome] = {}
    for group_index, group in enumerate(groups):
        if on_group is not None:
            on_group(group_index, len(groups), group.tag)
        fingerprint = group.source.fingerprint()
        done = _load_done(checkpoint_dir, group.tag, fingerprint)
        if done is None:
            stats = _capture_group(
                group.source,
                group.tag,
                config=config,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                distributed=distributed,
                job_dir=job_dir,
                progress=progress,
            )
            done = [
                _https_outcome(
                    spec,
                    group.sims[spec.victim_id],
                    stats.victim(spec.victim_id),
                    num_candidates=num_candidates,
                )
                for spec in group.specs
            ]
            del stats  # per-group counter banks; keep peak memory bounded
            _store_done(checkpoint_dir, group.tag, fingerprint, done)
        for outcome in done:
            outcomes[outcome.victim_id] = outcome
    return CampaignResult(
        kind="https",
        label=population.label,
        axes=HTTPS_AXES,
        outcomes=[
            outcomes[spec.victim_id] for spec in population.victims
        ],
        num_groups=len(groups),
    )


def _https_outcome(
    spec: VictimSpec,
    sim: HttpsAttackSimulation,
    stats,
    *,
    num_candidates: int,
) -> VictimOutcome:
    candidates = recover_candidates(
        stats, num_candidates, charset=charset_by_name(spec.charset)
    )
    rank = candidates.rank_of(sim.secret)
    success = rank is not None
    hours = (
        tls_timeline(stats.num_requests, candidates=rank + 1).total_hours
        if success
        else None
    )
    return VictimOutcome(
        victim_id=spec.victim_id,
        cell=(spec.browser, spec.charset, spec.reconnect_every),
        success=success,
        rank=rank,
        num_samples=stats.num_requests,
        hours=hours,
    )


# ---------------------------------------------------------------------------
# TKIP campaigns (§5 at fleet scale).
# ---------------------------------------------------------------------------


@dataclass
class TkipGroup:
    """One shared-keystream TKIP capture group."""

    tag: str
    specs: list[VictimSpec]
    sims: dict[str, WifiAttackSimulation]
    source: Any

    @property
    def label(self) -> str:
        return self.source.label


def plan_tkip_groups(
    config: ReproConfig,
    population: Population,
    *,
    tsc_values: Sequence[int],
    batch_size: int = 4096,
    group_size: int = 8,
) -> list[TkipGroup]:
    """Expand a population into shared-budget TKIP capture groups."""
    from ..capture import MultiTkipCaptureSource

    groups = []
    for (budget,), chunk_index, chunk in _grouped(
        population.victims,
        lambda spec: (spec.packets_per_tsc,),
        group_size,
    ):
        sims = {
            spec.victim_id: WifiAttackSimulation(
                replace(config, seed=spec.seed)
            )
            for spec in chunk
        }
        tag = f"tkip-p{budget}-g{chunk_index:04d}"
        source = MultiTkipCaptureSource(
            config=config,
            plaintexts=tuple(
                sims[spec.victim_id].true_plaintext for spec in chunk
            ),
            victim_ids=tuple(spec.victim_id for spec in chunk),
            tsc_values=tuple(tsc_values),
            packets_per_tsc=budget,
            batch_size=batch_size,
            label=f"{population.label}/{tag}",
        )
        groups.append(
            TkipGroup(tag=tag, specs=list(chunk), sims=sims, source=source)
        )
    return groups


def run_tkip_campaign(
    config: ReproConfig,
    population: Population,
    *,
    num_tsc: int,
    keys_per_tsc: int,
    max_candidates: int = 1 << 14,
    batch_size: int = 4096,
    group_size: int = 8,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int = 16,
    distributed: int = 0,
    job_dir: str | Path | None = None,
    progress=None,
    on_group: Callable[[int, int, str], None] | None = None,
) -> CampaignResult:
    """The §5 attack over a whole victim population.

    Victims sharing a packets-per-TSC budget share keystream batches;
    the per-TSC distribution map is measured once for the whole
    campaign (it depends on the key model, not the victim).  Success
    surfaces are keyed by the budget axis.
    """
    from ..tkip.per_tsc import default_tsc_space, generate_per_tsc

    if distributed and checkpoint_dir:
        raise CampaignError(
            "the fleet manages its own per-shard checkpoints; "
            "drop checkpoint_dir for distributed campaigns"
        )
    if not population.victims:
        return CampaignResult(
            kind="tkip", label=population.label, axes=TKIP_AXES, outcomes=[]
        )
    tsc_values = default_tsc_space(num_tsc)
    groups = plan_tkip_groups(
        config,
        population,
        tsc_values=tsc_values,
        batch_size=batch_size,
        group_size=group_size,
    )
    plaintext_len = len(groups[0].source.plaintexts[0])
    per_tsc = generate_per_tsc(
        config,
        tsc_values,
        keys_per_tsc,
        length=plaintext_len,
        label=f"{population.label}/per-tsc",
    )
    outcomes: dict[str, VictimOutcome] = {}
    for group_index, group in enumerate(groups):
        if on_group is not None:
            on_group(group_index, len(groups), group.tag)
        fingerprint = group.source.fingerprint()
        done = _load_done(checkpoint_dir, group.tag, fingerprint)
        if done is None:
            stats = _capture_group(
                group.source,
                group.tag,
                config=config,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                distributed=distributed,
                job_dir=job_dir,
                progress=progress,
            )
            done = [
                _tkip_outcome(
                    spec,
                    group.sims[spec.victim_id],
                    stats.victim_capture_set(spec.victim_id),
                    per_tsc,
                    max_candidates=max_candidates,
                )
                for spec in group.specs
            ]
            del stats
            _store_done(checkpoint_dir, group.tag, fingerprint, done)
        for outcome in done:
            outcomes[outcome.victim_id] = outcome
    return CampaignResult(
        kind="tkip",
        label=population.label,
        axes=TKIP_AXES,
        outcomes=[
            outcomes[spec.victim_id] for spec in population.victims
        ],
        num_groups=len(groups),
    )


def _tkip_outcome(
    spec: VictimSpec,
    sim: WifiAttackSimulation,
    capture,
    per_tsc,
    *,
    max_candidates: int,
) -> VictimOutcome:
    try:
        result = sim.attack(
            capture, per_tsc, max_candidates=max_candidates
        )
        success = bool(result.correct)
        rank = result.candidates_tried
    except AttackError:
        success = False
        rank = None
    hours = (
        tkip_timeline(capture.num_captured).total_hours if success else None
    )
    return VictimOutcome(
        victim_id=spec.victim_id,
        cell=(spec.packets_per_tsc,),
        success=success,
        rank=rank,
        num_samples=capture.num_captured,
        hours=hours,
    )
