"""Seeded heterogeneous victim populations.

The paper attacks one victim at a time; the campaign simulator models a
*fleet* of victims heterogeneous in exactly the axes the library already
understands — browser header layout (:data:`repro.tls.http
.BROWSER_PROFILES`), cookie alphabet (:data:`repro.tls.cookies
.CHARSETS`), TLS reconnect cadence, and TKIP packets-per-TSC budget
(*False Sense of Security on Protected Wi-Fi Networks* documents that
client heterogeneity in deployed networks; Beck's *Enhanced TKIP Michael
Attacks* motivates the per-TSC budget axis).

Sampling is deterministic per victim: victim i's attributes come from
``config.rng(label, "victim", i)`` and its private seed from
``child_seed(config.seed, label, "victim-seed", i)`` — functions of
``(seed, label, index)`` only, never of population order or size.  Any
victim can therefore be re-instantiated alone, bit-identically, without
sampling the rest of the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import ReproConfig, child_seed
from ..errors import CampaignError
from ..tls.cookies import CHARSETS
from ..tls.http import BROWSER_PROFILES

#: Default axes: every browser profile, every named cookie alphabet, the
#: two Fig-10 reconnect regimes, and two per-TSC injection budgets.
DEFAULT_BROWSERS: tuple[str, ...] = tuple(sorted(BROWSER_PROFILES))
DEFAULT_CHARSETS: tuple[str, ...] = tuple(sorted(CHARSETS))
DEFAULT_RECONNECT_REGIMES: tuple[int, ...] = (1, 16)
DEFAULT_BUDGETS: tuple[int, ...] = (1024, 4096)


@dataclass(frozen=True)
class VictimSpec:
    """One member of a campaign population.

    Attributes:
        index: position in the population (stable identity).
        victim_id: stable string identifier derived from the index.
        browser: client profile name (header layout + default alphabet).
        charset: named cookie alphabet the site issued to this victim.
        reconnect_every: requests per TLS connection before rekeying.
        packets_per_tsc: TKIP injection budget per TSC value.
        seed: private master seed — re-instantiating this victim's
            simulation from ``seed`` alone reproduces its secret
            bit-exactly.
    """

    index: int
    victim_id: str
    browser: str
    charset: str
    reconnect_every: int
    packets_per_tsc: int
    seed: int


@dataclass(frozen=True)
class Population:
    """A sampled victim fleet plus the label that seeded it."""

    label: str
    victims: tuple[VictimSpec, ...]

    def __len__(self) -> int:
        return len(self.victims)

    def __iter__(self):
        return iter(self.victims)

    @classmethod
    def sample(
        cls,
        config: ReproConfig,
        size: int,
        *,
        browsers: Sequence[str] = DEFAULT_BROWSERS,
        charsets: Sequence[str] = DEFAULT_CHARSETS,
        reconnect_regimes: Sequence[int] = DEFAULT_RECONNECT_REGIMES,
        budgets: Sequence[int] = DEFAULT_BUDGETS,
        label: str = "campaign",
    ) -> "Population":
        """Draw a deterministic heterogeneous population.

        Victim i's attributes depend only on ``(config.seed, label, i)``
        — permuting, truncating, or extending the population never
        changes an existing victim (the seed-independence property
        tests/test_campaign.py holds by hypothesis).
        """
        if size < 0:
            raise CampaignError(f"population size must be >= 0, got {size}")
        if not label:
            raise CampaignError("population label must be non-empty")
        browsers = tuple(browsers)
        charsets = tuple(charsets)
        reconnect_regimes = tuple(int(r) for r in reconnect_regimes)
        budgets = tuple(int(b) for b in budgets)
        for axis_name, axis in (
            ("browsers", browsers),
            ("charsets", charsets),
            ("reconnect_regimes", reconnect_regimes),
            ("budgets", budgets),
        ):
            if not axis:
                raise CampaignError(f"{axis_name} axis must be non-empty")
        unknown = [b for b in browsers if b not in BROWSER_PROFILES]
        if unknown:
            raise CampaignError(
                f"unknown browsers {unknown}; "
                f"known: {sorted(BROWSER_PROFILES)}"
            )
        unknown = [c for c in charsets if c not in CHARSETS]
        if unknown:
            raise CampaignError(
                f"unknown charsets {unknown}; known: {sorted(CHARSETS)}"
            )
        if any(r < 1 for r in reconnect_regimes):
            raise CampaignError(
                f"reconnect regimes must be >= 1, got {reconnect_regimes}"
            )
        if any(b < 1 for b in budgets):
            raise CampaignError(f"budgets must be >= 1, got {budgets}")
        victims = tuple(
            _sample_victim(
                config, label, i, browsers, charsets,
                reconnect_regimes, budgets,
            )
            for i in range(size)
        )
        return cls(label=label, victims=victims)


def _sample_victim(
    config: ReproConfig,
    label: str,
    index: int,
    browsers: tuple[str, ...],
    charsets: tuple[str, ...],
    reconnect_regimes: tuple[int, ...],
    budgets: tuple[int, ...],
) -> VictimSpec:
    rng = config.rng(label, "victim", index)
    return VictimSpec(
        index=index,
        victim_id=f"victim-{index:05d}",
        browser=browsers[int(rng.integers(len(browsers)))],
        charset=charsets[int(rng.integers(len(charsets)))],
        reconnect_every=reconnect_regimes[
            int(rng.integers(len(reconnect_regimes)))
        ],
        packets_per_tsc=budgets[int(rng.integers(len(budgets)))],
        seed=child_seed(config.seed, label, "victim-seed", index),
    )
