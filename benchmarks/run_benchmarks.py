#!/usr/bin/env python
"""Run the perf-critical benchmark subset and record machine-readable rates.

Writes ``BENCH_<date>[_<label>].json`` next to this script: keys/sec for
``batch_keystream``, counts/sec per counting kernel, and end-to-end
dataset wall-clocks.  Committing these files gives the repo a perf
trajectory — every optimisation PR records a before/after pair on the
same machine (the single-machine analogue of the paper's cluster budget
in §3.2).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--label post]
    PYTHONPATH=src python benchmarks/run_benchmarks.py --smoke  # <60 s gate
    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --smoke --check benchmarks/BENCH_<date>_post.json --tolerance 0.25

``--smoke`` runs a fast subset with reduced calibration and skips the
JSON recording unless ``--out`` is given; it exists for ``make verify``
so perf regressions fail fast without the full bench matrix.

``--check BASELINE.json`` compares the run against a committed baseline:
any shared benchmark whose mean exceeds ``baseline * (1 + tolerance)``
is reported and the process exits with status 2 (run failures keep
exiting 1), so callers can soft-fail on regressions while hard-failing
on broken benchmarks.  Baselines recorded on different hardware will
drift; the gate is meant for same-machine or same-CI-runner-class
comparisons, hence the generous default tolerance.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Benchmark files whose results feed the BENCH json.
BENCH_FILES = [
    "test_core_throughput.py",
    "test_dataset_pipeline.py",
    "test_capture_throughput.py",
    "test_campaign_throughput.py",
    "test_candidate_throughput.py",
]

#: -k expression selecting the <60 s smoke subset.
SMOKE_FILTER = (
    "batch_rc4_throughput or single_byte_kernel or longterm_dataset_wallclock"
)


def _run_pytest(json_path: Path, *, smoke: bool) -> int:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(BENCH_DIR / name) for name in BENCH_FILES],
        "-q",
        "--benchmark-json",
        str(json_path),
        "--benchmark-warmup=off",
    ]
    if smoke:
        cmd += ["-k", SMOKE_FILTER, "--benchmark-max-time=0.5"]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.call(cmd, cwd=str(REPO_ROOT), env=env)


def _native_backend_status() -> bool:
    try:
        from repro.rc4 import _native

        return _native.available()
    except Exception:
        return False


def _distill(raw: dict, label: str) -> dict:
    import numpy

    results = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        stats = bench["stats"]
        extra = bench.get("extra_info", {}) or {}
        entry = {
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        if "keys" in extra:
            entry["keys"] = extra["keys"]
            entry["keys_per_s"] = extra["keys"] / stats["mean"]
        if "counts" in extra:
            entry["counts"] = extra["counts"]
            entry["counts_per_s"] = extra["counts"] / stats["mean"]
        results[name] = entry
    return {
        "label": label,
        "date": _dt.date.today().isoformat(),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "cpu_count": os.cpu_count(),
        },
        "native_backend": _native_backend_status(),
        "benchmarks": results,
    }


#: Exit status for "benchmarks ran fine but regressed past tolerance",
#: distinct from 1 (run failure) so callers can soft-fail regressions.
REGRESSION_EXIT = 2


def compare_records(
    baseline: dict, current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Compare two distilled BENCH records.

    Returns ``(regressions, notes)``: one message per shared benchmark
    whose current mean exceeds ``baseline_mean * (1 + tolerance)``, plus
    informational notes (benchmarks present in only one record, or
    mismatched native-backend state — both make means incomparable).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    regressions: list[str] = []
    notes: list[str] = []
    base_bench = baseline.get("benchmarks", {})
    cur_bench = current.get("benchmarks", {})
    if baseline.get("native_backend") != current.get("native_backend"):
        notes.append(
            "native backend differs from baseline "
            f"(baseline={baseline.get('native_backend')}, "
            f"current={current.get('native_backend')}); "
            "means are not comparable"
        )
        return regressions, notes
    shared = sorted(set(base_bench) & set(cur_bench))
    for name in sorted(set(base_bench) ^ set(cur_bench)):
        side = "baseline" if name in base_bench else "current"
        notes.append(f"{name}: only in {side} record, skipped")
    for name in shared:
        base_mean = base_bench[name]["mean_s"]
        cur_mean = cur_bench[name]["mean_s"]
        if base_mean <= 0:
            notes.append(f"{name}: non-positive baseline mean, skipped")
            continue
        ratio = cur_mean / base_mean
        if ratio > 1.0 + tolerance:
            regressions.append(
                f"{name}: {cur_mean * 1e3:.2f} ms vs baseline "
                f"{base_mean * 1e3:.2f} ms ({ratio:.2f}x, "
                f"tolerance {1.0 + tolerance:.2f}x)"
            )
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label",
        default="",
        help="suffix for the output file, e.g. 'pre' -> BENCH_<date>_pre.json",
    )
    parser.add_argument(
        "--out", default="", help="explicit output path (overrides --label)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast subset with reduced calibration; no JSON unless --out",
    )
    parser.add_argument(
        "--check",
        default="",
        metavar="BASELINE.json",
        help="compare against a recorded baseline; exit 2 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed mean slowdown vs baseline (0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    if args.check and not Path(args.check).exists():
        # Fail before spending minutes benchmarking against nothing.
        print(f"baseline {args.check} not found", file=sys.stderr)
        return 1

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        rc = _run_pytest(raw_path, smoke=args.smoke)
        if rc != 0:
            print(f"benchmark run failed (pytest exit {rc})", file=sys.stderr)
            return rc
        raw = json.loads(raw_path.read_text())

    record = _distill(raw, args.label or ("smoke" if args.smoke else "full"))

    if args.check:
        baseline_path = Path(args.check)
        baseline = json.loads(baseline_path.read_text())
        regressions, notes = compare_records(baseline, record, args.tolerance)
        for note in notes:
            print(f"note: {note}")
        if regressions:
            print(
                f"PERF REGRESSION vs {baseline_path} "
                f"(tolerance {args.tolerance:.0%}):",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return REGRESSION_EXIT
        print(f"perf check ok vs {baseline_path} (tolerance {args.tolerance:.0%})")
        if args.smoke and not args.out:
            return 0

    if args.smoke and not args.out:
        print("smoke run ok (no BENCH json recorded)")
        return 0

    if args.out:
        out_path = Path(args.out)
    else:
        suffix = f"_{args.label}" if args.label else ""
        out_path = BENCH_DIR / f"BENCH_{record['date']}{suffix}.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    for name, entry in sorted(record["benchmarks"].items()):
        rate = entry.get("keys_per_s")
        rate_txt = f"  {rate:,.0f} keys/s" if rate else ""
        print(f"  {name}: {entry['mean_s'] * 1e3:.2f} ms{rate_txt}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
