#!/usr/bin/env python
"""Run the perf-critical benchmark subset and record machine-readable rates.

Writes ``BENCH_<date>[_<label>].json`` next to this script: keys/sec for
``batch_keystream``, counts/sec per counting kernel, and end-to-end
dataset wall-clocks.  Committing these files gives the repo a perf
trajectory — every optimisation PR records a before/after pair on the
same machine (the single-machine analogue of the paper's cluster budget
in §3.2).

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--label post]
    PYTHONPATH=src python benchmarks/run_benchmarks.py --smoke  # <60 s gate

``--smoke`` runs a fast subset with reduced calibration and skips the
JSON recording unless ``--out`` is given; it exists for ``make verify``
so perf regressions fail fast without the full bench matrix.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Benchmark files whose results feed the BENCH json.
BENCH_FILES = ["test_core_throughput.py", "test_dataset_pipeline.py"]

#: -k expression selecting the <60 s smoke subset.
SMOKE_FILTER = (
    "batch_rc4_throughput or single_byte_kernel or longterm_dataset_wallclock"
)


def _run_pytest(json_path: Path, *, smoke: bool) -> int:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(BENCH_DIR / name) for name in BENCH_FILES],
        "-q",
        "--benchmark-json",
        str(json_path),
        "--benchmark-warmup=off",
    ]
    if smoke:
        cmd += ["-k", SMOKE_FILTER, "--benchmark-max-time=0.5"]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.call(cmd, cwd=str(REPO_ROOT), env=env)


def _native_backend_status() -> bool:
    try:
        from repro.rc4 import _native

        return _native.available()
    except Exception:
        return False


def _distill(raw: dict, label: str) -> dict:
    import numpy

    results = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        stats = bench["stats"]
        extra = bench.get("extra_info", {}) or {}
        entry = {
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        if "keys" in extra:
            entry["keys"] = extra["keys"]
            entry["keys_per_s"] = extra["keys"] / stats["mean"]
        if "counts" in extra:
            entry["counts"] = extra["counts"]
            entry["counts_per_s"] = extra["counts"] / stats["mean"]
        results[name] = entry
    return {
        "label": label,
        "date": _dt.date.today().isoformat(),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "cpu_count": os.cpu_count(),
        },
        "native_backend": _native_backend_status(),
        "benchmarks": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--label",
        default="",
        help="suffix for the output file, e.g. 'pre' -> BENCH_<date>_pre.json",
    )
    parser.add_argument(
        "--out", default="", help="explicit output path (overrides --label)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast subset with reduced calibration; no JSON unless --out",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        rc = _run_pytest(raw_path, smoke=args.smoke)
        if rc != 0:
            print(f"benchmark run failed (pytest exit {rc})", file=sys.stderr)
            return rc
        raw = json.loads(raw_path.read_text())

    if args.smoke and not args.out:
        print("smoke run ok (no BENCH json recorded)")
        return 0

    record = _distill(raw, args.label or ("smoke" if args.smoke else "full"))
    if args.out:
        out_path = Path(args.out)
    else:
        suffix = f"_{args.label}" if args.label else ""
        out_path = BENCH_DIR / f"BENCH_{record['date']}{suffix}.json"
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    for name, entry in sorted(record["benchmarks"].items()):
        rate = entry.get("keys_per_s")
        rate_txt = f"  {rate:,.0f} keys/s" if rate else ""
        print(f"  {name}: {entry['mean_s'] * 1e3:.2f} ms{rate_txt}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
