"""Figure 9: median candidate-list position of the first correct-ICV hit.

Paper: with ~2^30 candidates, the median rank of the first candidate
passing the CRC falls from ~2^26 to ~2^10 as captures grow from 1 to
15 x 2^20 (256 simulations per point).

Reproduction: same quantity over the scaled TSC subspace.  Shape
requirement: the median rank is non-increasing as captures grow.
"""

import numpy as np
import pytest
from itertools import islice

from repro.config import ReproConfig
from repro.core.candidates.lazy import lazy_candidates
from repro.simulate import WifiAttackSimulation, sampled_capture
from repro.tkip.attack import position_log_likelihoods
from repro.tkip.crc import Crc32
from repro.utils.tables import format_table


@pytest.mark.figure
def test_fig9_median_icv_rank(benchmark, config, per_tsc_dists):
    trials = config.scaled(8, maximum=64)
    budget = config.scaled(1 << 15, maximum=1 << 22)
    sim = WifiAttackSimulation(ReproConfig(seed=config.seed + 9))
    sweep = [1 << 6, 1 << 8, 1 << 10, 1 << 12]
    plaintext = sim.true_plaintext
    known = sim.spec.msdu_data()
    unknown = list(range(len(known) + 1, len(plaintext) + 1))

    def run():
        medians = []
        for packets in sweep:
            ranks = []
            for t in range(trials):
                capture = sampled_capture(
                    per_tsc_dists,
                    plaintext,
                    range(1, len(plaintext) + 1),
                    packets_per_tsc=packets,
                    seed=config.rng("fig9", packets, t),
                )
                loglik = position_log_likelihoods(
                    capture, per_tsc_dists, unknown
                )
                prefix_crc = Crc32().update(known)
                rank_found = budget  # censored at the budget
                for rank, (cand, _s) in enumerate(
                    islice(lazy_candidates(loglik), budget)
                ):
                    if (
                        prefix_crc.copy().update(cand[:8]).digest()
                        == cand[8:]
                    ):
                        rank_found = rank + 1
                        break
                ranks.append(rank_found)
            medians.append(float(np.median(ranks)))
        return medians

    medians = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = [
        (f"2^{p.bit_length() - 1}", f"{m:.0f}", f"~2^{np.log2(max(m, 1)):.1f}")
        for p, m in zip(sweep, medians)
    ]
    print(
        format_table(
            ["packets/TSC", "median rank", "log scale"],
            [(a, b, c.split("~")[-1]) for a, b, c in rows],
            title=(
                f"Fig 9 reproduction: median position of first correct-ICV "
                f"candidate ({trials} trials/point, censored at "
                f"2^{budget.bit_length()-1})"
            ),
        )
    )
    print("paper shape: median rank decreases by orders of magnitude "
          "as captures grow (2^26 -> 2^10 over 1..15 x 2^20).")

    # Shape: non-increasing (allow equality when censored or saturated).
    assert all(a >= b for a, b in zip(medians, medians[1:]))
    # At the top of the sweep the correct candidate is found essentially
    # immediately.
    assert medians[-1] <= 4
