"""Core primitive throughput, including the eq 15 vs eq 13 ablation.

Paper §4.1 claims the sparse likelihood optimisation cuts the per-
position cost from ~2^32 to ~2^19 operations for the Fluhrer-McGrew
model; this benchmark measures the primitives that dominate every
experiment in the repository.
"""

import numpy as np
import pytest

from repro.biases import fm_digraph_distribution
from repro.biases.fluhrer_mcgrew import fm_biased_cells
from repro.core import (
    algorithm1,
    algorithm2,
    digraph_log_likelihoods,
    digraph_log_likelihoods_dense,
    single_byte_log_likelihoods,
)
from repro.rc4 import batch_keystream
from repro.tls import COOKIE_CHARSET


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2718)


def test_batch_rc4_throughput(benchmark, rng):
    """Keys/second for 64-byte keystreams (the statistics workhorse).

    Public API with default knobs: on the native backend this is the
    interleaved PRGA fanned across all cores."""
    keys = rng.integers(0, 256, size=(1 << 13, 16), dtype=np.uint8)
    benchmark.extra_info["keys"] = 1 << 13
    result = benchmark(lambda: batch_keystream(keys, 64))
    assert result.shape == (1 << 13, 64)


def _native_or_skip():
    from repro.rc4 import _native

    if not _native.available():
        pytest.skip("native backend unavailable (no C compiler?)")
    return _native


def test_batch_rc4_prga_scalar_1t(benchmark, rng):
    """Ablation: one thread, scalar per-key PRGA (the PR-1 kernel)."""
    _native = _native_or_skip()
    keys = rng.integers(0, 256, size=(1 << 13, 16), dtype=np.uint8)
    benchmark.extra_info["keys"] = 1 << 13
    result = benchmark(
        lambda: _native.batch_keystream(
            keys, 64, threads=1, interleave=False, simd=False
        )
    )
    assert result.shape == (1 << 13, 64)


def test_batch_rc4_prga_interleaved_1t(benchmark, rng):
    """Ablation: one thread, interleaved PRGA — isolates the speedup from
    overlapping the serial swap-latency chains, without threading."""
    _native = _native_or_skip()
    keys = rng.integers(0, 256, size=(1 << 13, 16), dtype=np.uint8)
    benchmark.extra_info["keys"] = 1 << 13
    result = benchmark(
        lambda: _native.batch_keystream(
            keys, 64, threads=1, interleave=True, simd=False
        )
    )
    assert result.shape == (1 << 13, 64)


def test_batch_rc4_prga_simd_1t(benchmark, rng):
    """Ablation: one thread, AVX2 wide PRGA — 32 transposed lane-major
    states per loop with gathered S-box reads.  Together with the scalar
    and interleaved ablations this isolates the full dispatch-tier chain
    on one core (skipped on non-AVX2 hardware)."""
    _native = _native_or_skip()
    if not _native.simd_available():
        pytest.skip("SIMD tier unavailable (no AVX2)")
    keys = rng.integers(0, 256, size=(1 << 13, 16), dtype=np.uint8)
    benchmark.extra_info["keys"] = 1 << 13
    result = benchmark(
        lambda: _native.batch_keystream(keys, 64, threads=1, simd=True)
    )
    assert result.shape == (1 << 13, 64)


def test_single_byte_likelihood_throughput(benchmark, rng):
    counts = rng.integers(0, 1000, 256).astype(np.float64)
    dist = np.full(256, 1 / 256)
    dist[0] *= 2
    dist /= dist.sum()
    out = benchmark(lambda: single_byte_log_likelihoods(counts, dist))
    assert out.shape == (256,)


def test_digraph_likelihood_sparse_eq15(benchmark, rng):
    """The optimised eq 15 path (~2^19 operations for FM)."""
    cells = fm_biased_cells(7)
    mass = sum(p for _, p in cells)
    uniform_p = (1.0 - mass) / (65536 - len(cells))
    counts = rng.integers(0, 100, size=(256, 256)).astype(np.float64)
    out = benchmark(
        lambda: digraph_log_likelihoods(counts, cells, uniform_p)
    )
    assert out.shape == (256, 256)


def test_digraph_likelihood_dense_eq13_subset(benchmark, rng):
    """The naive eq 13 path, restricted to 64 candidate pairs (the full
    2^16 x 2^16 sweep is the paper's 2^32-operation strawman)."""
    dist = fm_digraph_distribution(7)
    counts = rng.integers(0, 100, size=(256, 256)).astype(np.float64)
    candidates = [(a, b) for a in range(8) for b in range(8)]
    out = benchmark(
        lambda: digraph_log_likelihoods_dense(counts, dist, candidates=candidates)
    )
    assert len(out) == 64
    # The ablation: per-candidate, the dense path does 2^16 multiplies
    # where the sparse path does ~|Ic| lookups.
    assert len(fm_biased_cells(7)) <= 8


def test_algorithm1_throughput(benchmark, rng):
    lam = rng.normal(size=(12, 256))
    cands, scores = benchmark(lambda: algorithm1(lam, 1 << 10))
    assert len(cands) == 1 << 10


def test_algorithm2_throughput(benchmark, rng):
    lam = rng.normal(size=(17, 256, 256))
    result = benchmark.pedantic(
        lambda: algorithm2(lam, 0x3D, 0x3B, 1 << 10, charset=COOKIE_CHARSET),
        rounds=2,
        iterations=1,
    )
    assert len(result) == 1 << 10
