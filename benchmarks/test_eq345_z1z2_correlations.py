"""Equations 3-5 (§3.3.2): equalities among Z1, Z2, Z3, Z4.

Paper:  Pr[Z1 = Z3] = 2^-8 (1 - 2^-9.617)
        Pr[Z1 = Z4] = 2^-8 (1 + 2^-8.590)
        Pr[Z2 = Z4] = 2^-8 (1 - 2^-9.622)
plus the Paul-Preneel Pr[Z1 = Z2] = 2^-8 (1 - 2^-8).

Reproduction: equality counts over scaled keys; z-scores against uniform
and against the paper's stated value.  The strongest (Paul-Preneel)
separates around 2^26 keys; the weaker ones need ~2^28-2^30, so sign
agreement plus consistency is the laptop-scale check.
"""

import pytest

from repro.biases import EQUALITY_BIASES
from repro.datasets import DatasetSpec, generate_dataset
from repro.utils.tables import format_table

from _shared import z_score


@pytest.mark.table
def test_eq345_equalities(benchmark, config):
    num_keys = config.scaled(1 << 25, maximum=1 << 28)
    pairs = tuple(b.positions for b in EQUALITY_BIASES)
    spec = DatasetSpec(
        kind="equality", num_keys=num_keys, pairs=pairs, label="eq345"
    )
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config), rounds=1, iterations=1
    )

    rows = []
    aligned_z = 0.0
    for idx, bias in enumerate(EQUALITY_BIASES):
        equal, trials = int(counts[idx, 0]), int(counts[idx, 1])
        measured = equal / trials
        z_uniform = z_score(equal, trials, 1.0 / 256.0)
        z_paper = z_score(equal, trials, bias.probability)
        expected_sign = 1 if bias.relative_bias > 0 else -1
        aligned_z += z_uniform * expected_sign
        rows.append(
            (
                f"Pr[Z{bias.positions[0]} = Z{bias.positions[1]}]",
                f"{bias.probability * 256:.6f}",
                f"{measured * 256:.6f}",
                f"{z_uniform:+.2f}",
                f"{z_paper:+.2f}",
            )
        )
    print()
    print(
        format_table(
            ["equality", "paper p*256", "measured p*256", "z vs uniform", "z vs paper"],
            rows,
            title=f"Eqs 3-5 + Paul-Preneel over {num_keys} keys",
        )
    )
    print("expected signs: Z1=Z2 negative, Z1=Z3 negative, Z1=Z4 positive, "
          "Z2=Z4 negative")

    # Sign-aligned pooled evidence must not be contrarian; at default
    # scale the Paul-Preneel term dominates (expected z ~ 1.4 at 2^25
    # keys; clean separation needs ~2^28).
    assert aligned_z > -2.0
    # Consistency with the paper's stated probabilities (within 5 sigma).
    for idx, bias in enumerate(EQUALITY_BIASES):
        equal, trials = int(counts[idx, 0]), int(counts[idx, 1])
        assert abs(z_score(equal, trials, bias.probability)) < 5.0
