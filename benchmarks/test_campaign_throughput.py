"""Campaign throughput: shared-keystream groups vs independent captures.

The multi-template kernel's whole point is amortization — one keystream
batch XOR-counted against many victim templates.  ``group`` times a
single :class:`MultiHttpsCaptureSource` over ``NUM_VICTIMS`` templates;
``independent`` times the same victims as separate single-template
captures, each regenerating the keystream it shares in the group path.
Both report victim-requests/second on identical counting work, so the
ratio is the amortization factor directly.

``single_victim`` guards the other direction: the single-template
HTTPS source now routes through the multi-template kernel as a 1-row
matrix (held bit-identical by tests/test_capture_equivalence.py), and
must not regress against the pre-routing capture baselines in
``BENCH_2026-07-30_capture_post.json``.

Recorded pre/post pairs live in ``BENCH_2026-08-08_campaign_*.json``.
"""

import pytest

from repro.capture import (
    HttpsCaptureSource,
    MultiHttpsCaptureSource,
    MultiTkipCaptureSource,
    TkipCaptureSource,
    run_capture,
)
from repro.config import ReproConfig
from repro.simulate import HttpsAttackSimulation

NUM_VICTIMS = 8
NUM_REQUESTS = 1 << 11
TSC_VALUES = (0, 1024)
PACKETS_PER_TSC = 1 << 11

_CONFIG = ReproConfig(seed=20160801)


@pytest.fixture(scope="module")
def https_group():
    """One shared layout, NUM_VICTIMS distinct cookies."""
    sims = [
        HttpsAttackSimulation(
            ReproConfig(seed=20160801 + i), cookie_len=2, max_gap=8,
        )
        for i in range(NUM_VICTIMS)
    ]
    layout = sims[0].layout
    templates = tuple(sim.campaign.request_plaintext() for sim in sims)
    return layout, templates


def test_https_campaign_group_capture(benchmark, https_group):
    """NUM_VICTIMS victims sharing one keystream schedule."""
    layout, templates = https_group
    source = MultiHttpsCaptureSource(
        config=_CONFIG,
        layout=layout,
        templates=templates,
        victim_ids=tuple(f"v{i}" for i in range(NUM_VICTIMS)),
        num_requests=NUM_REQUESTS,
        batch_size=4096,
        max_gap=8,
        label="bench-campaign-group",
    )
    benchmark.extra_info["counts"] = NUM_REQUESTS * NUM_VICTIMS
    stats = benchmark(run_capture, source)
    assert stats.victims[0].num_requests == NUM_REQUESTS


def test_https_campaign_independent_captures(benchmark, https_group):
    """The same victims captured one by one, keystream regenerated."""
    layout, templates = https_group

    def capture_all():
        results = []
        for i, template in enumerate(templates):
            source = HttpsCaptureSource(
                config=_CONFIG,
                layout=layout,
                plaintext=template,
                num_requests=NUM_REQUESTS,
                batch_size=4096,
                max_gap=8,
                label="bench-campaign-group",
            )
            results.append(run_capture(source))
        return results

    benchmark.extra_info["counts"] = NUM_REQUESTS * NUM_VICTIMS
    results = benchmark(capture_all)
    assert results[0].num_requests == NUM_REQUESTS


def test_https_single_victim_routed_path(benchmark, https_group):
    """The 1-row-matrix case of the multi-template kernel (the default
    HTTPS capture path since the campaign refactor)."""
    layout, templates = https_group
    source = HttpsCaptureSource(
        config=_CONFIG,
        layout=layout,
        plaintext=templates[0],
        num_requests=2 * NUM_REQUESTS,
        batch_size=4096,
        max_gap=8,
        label="bench-campaign-single",
    )
    benchmark.extra_info["counts"] = 2 * NUM_REQUESTS
    stats = benchmark(run_capture, source)
    assert stats.num_requests == 2 * NUM_REQUESTS


def test_tkip_campaign_group_capture(benchmark):
    """The §5 analogue: one keystream batch, NUM_VICTIMS packet bodies."""
    plaintexts = tuple(
        bytes((i + j) & 0xFF for j in range(64)) for i in range(NUM_VICTIMS)
    )
    source = MultiTkipCaptureSource(
        config=_CONFIG,
        plaintexts=plaintexts,
        victim_ids=tuple(f"v{i}" for i in range(NUM_VICTIMS)),
        tsc_values=TSC_VALUES,
        packets_per_tsc=PACKETS_PER_TSC,
        label="bench-campaign-tkip",
    )
    total = len(TSC_VALUES) * PACKETS_PER_TSC * NUM_VICTIMS
    benchmark.extra_info["counts"] = total
    stats = benchmark(run_capture, source)
    assert stats.num_captured == len(TSC_VALUES) * PACKETS_PER_TSC


def test_tkip_campaign_independent_captures(benchmark):
    plaintexts = tuple(
        bytes((i + j) & 0xFF for j in range(64)) for i in range(NUM_VICTIMS)
    )

    def capture_all():
        results = []
        for plaintext in plaintexts:
            source = TkipCaptureSource(
                config=_CONFIG,
                plaintext=plaintext,
                tsc_values=TSC_VALUES,
                packets_per_tsc=PACKETS_PER_TSC,
                label="bench-campaign-tkip",
            )
            results.append(run_capture(source))
        return results

    total = len(TSC_VALUES) * PACKETS_PER_TSC * NUM_VICTIMS
    benchmark.extra_info["counts"] = total
    results = benchmark(capture_all)
    assert results[0].num_captured == len(TSC_VALUES) * PACKETS_PER_TSC
