"""Table 1: generalized Fluhrer-McGrew digraph biases, long-term.

Paper: 12 digraph rules with probabilities 2^-16 (1 +/- 2^-8) (double
strength for (0,0) at i = 1), measured from cluster-scale keystream.

Reproduction: count rule matches over keystream deep past the initial
bytes (drop 1023, as the paper's long-term dataset does), pooled over all
applicable i values.  Per-cell separation from uniform needs ~2^36
digraphs (power analysis), so alongside per-rule z-scores we report the
pooled log-likelihood-ratio sigma that the data prefers the FM model
over uniform — the honest aggregate at laptop scale.
"""

import numpy as np
import pytest

from repro.biases.fluhrer_mcgrew import FM_RULES
from repro.utils.tables import format_table

from _shared import parallel_fm_matches, pooled_llr_z, z_score

STREAM_LEN = 1 << 12
DROP = 1023


def _rule_targets() -> np.ndarray:
    """Per-rule target digraph code for each stream row (-1 = N/A)."""
    targets = np.full((len(FM_RULES), STREAM_LEN), -1, dtype=np.int32)
    for rule_idx, rule in enumerate(FM_RULES):
        for row in range(STREAM_LEN):
            i = (DROP + row + 1) % 256
            if rule.applies(i, None):
                a, b = rule.cell(i)
                targets[rule_idx, row] = (a << 8) | b
    return targets


@pytest.mark.table
def test_table1_fm_longterm(benchmark, config):
    total_keys = config.scaled(1 << 16, maximum=1 << 21)
    targets = _rule_targets()

    def run():
        return parallel_fm_matches(
            config, "table1", total_keys, STREAM_LEN, DROP, targets
        )

    matches, trials = benchmark.pedantic(run, rounds=1, iterations=1)

    uniform = 2.0**-16
    rows = []
    p_alt = np.array([rule.probability for rule in FM_RULES])
    p_null = np.full(len(FM_RULES), uniform)
    sign_hits = 0
    sign_total = 0
    for rule, m, t in zip(FM_RULES, matches, trials):
        measured = m / t if t else 0.0
        z_uniform = z_score(int(m), int(t), uniform)
        expected_sign = 1 if rule.probability > uniform else -1
        measured_sign = 1 if measured > uniform else -1
        if t:
            sign_total += 1
            sign_hits += expected_sign == measured_sign
        rows.append(
            (
                rule.name,
                f"{rule.probability * 2**16:.5f}",
                f"{measured * 2**16:.5f}",
                f"{z_uniform:+.2f}",
            )
        )
    pooled = pooled_llr_z(matches, trials, p_alt, p_null)
    print()
    print(
        format_table(
            ["digraph (Table 1)", "paper 2^16*p", "measured 2^16*p", "z vs uniform"],
            rows,
            title=(
                f"Table 1 reproduction: {int(trials.sum()):,} rule-trials from "
                f"{total_keys} keys x {STREAM_LEN} long-term digraphs"
            ),
        )
    )
    print(
        f"pooled LLR preference for the FM model over uniform: {pooled:+.2f} sigma"
    )
    print(f"sign agreement: {sign_hits}/{sign_total} rules")
    print("note: per-rule separation needs ~2^36 digraphs (paper scale).")

    # Sanity gates: counting machinery consistent; evidence not contrarian.
    assert int(trials.sum()) > 0
    assert all(0.0 <= m / t <= 1.0 for m, t in zip(matches, trials) if t)
    assert pooled > -3.0
