"""Figure 5: the influence of Z1 and Z2 on all initial bytes.

Paper: six families of (Z1 or Z2, Z_i) value-pair biases spanning every
initial position, |q| between 2^-7 and 2^-11; families involving Z1
generally positive (family 3 negative), families involving Z2 negative.

Reproduction: joint counts of (Z1, Z_i) and (Z2, Z_i) for a grid of i,
measured relative bias per family against the empirical independence
baseline, pooled per family.  Per-cell separation needs >=2^33 keys;
at laptop scale the check is sign-pattern agreement of the pooled
per-family statistics plus model consistency.
"""

import numpy as np
import pytest

from repro.biases import Z1Z2_FAMILIES
from repro.datasets import DatasetSpec, generate_dataset
from repro.utils.tables import format_table


GRID = [3, 5, 8, 16, 32, 64, 128, 200, 256]


@pytest.mark.figure
def test_fig5_z1_z2_influence(benchmark, config):
    num_keys = config.scaled(1 << 21, maximum=1 << 25)
    pairs = tuple(
        sorted({(1, i) for i in GRID if i > 1} | {(2, i) for i in GRID if i > 2})
    )
    spec = DatasetSpec(kind="pairs", num_keys=num_keys, pairs=pairs, label="fig5")
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config), rounds=1, iterations=1
    )
    pair_index = {p: idx for idx, p in enumerate(pairs)}

    rows = []
    family_pooled_z = []
    for name, z_pos, z_val, zi_val, sign in Z1Z2_FAMILIES:
        pooled_obs = 0
        pooled_expected = 0.0
        pooled_var = 0.0
        for i in GRID:
            if i <= z_pos:
                continue
            table = counts[pair_index[(z_pos, i)]].astype(np.float64)
            total = table.sum()
            a, b = z_val(i), zi_val(i)
            independence_p = (
                table[a, :].sum() / total * (table[:, b].sum() / total)
            )
            observed = int(table[a, b])
            pooled_obs += observed
            pooled_expected += total * independence_p
            pooled_var += total * independence_p * (1 - independence_p)
        pooled_z = (
            (pooled_obs - pooled_expected) / np.sqrt(pooled_var)
            if pooled_var > 0
            else 0.0
        )
        family_pooled_z.append((sign, pooled_z))
        rows.append(
            (
                name,
                "+" if sign > 0 else "-",
                f"{pooled_z:+.2f}",
                "yes" if (pooled_z > 0) == (sign > 0) else "no",
            )
        )
    print()
    print(
        format_table(
            ["family (§3.3.2)", "paper sign", "pooled z vs independence", "agrees"],
            rows,
            title=f"Fig 5 reproduction over {num_keys} keys, i in {GRID}",
        )
    )
    agreements = sum((z > 0) == (s > 0) for s, z in family_pooled_z)
    print(f"sign agreement: {agreements}/6 families "
          "(per-family separation needs >=2^33 keys)")

    assert len(rows) == 6
    # Evidence must not be strongly contrarian in aggregate: the summed
    # sign-aligned z should not be deeply negative.
    aligned = sum(z * (1 if s > 0 else -1) for s, z in family_pooled_z)
    assert aligned > -6.0
