"""Figure 4: Fluhrer-McGrew digraphs in the *initial* keystream bytes.

Paper: the FM biases, long thought absent from the initial bytes, are
present there with position-dependent strength |q| between ~2^-6.5 and
~2^-8.5 relative to the single-byte-expected probability, converging to
the long-term values after position 257; exceptions at r = 1, 2, 5.

Reproduction: consecutive-digraph counts for the first positions; per
position we report the measured relative bias of each applicable FM cell
against the empirical marginals, plus a pooled LLR sigma that the
initial-byte data prefers the FM-present model.  Per-cell separation
needs ~2^35 keys; the pooled statistic and the sign pattern are the
laptop-scale checks.
"""

import numpy as np
import pytest

from repro.biases.fluhrer_mcgrew import fm_biased_cells, position_to_counter
from repro.datasets import DatasetSpec, generate_dataset
from repro.utils.tables import format_table

from _shared import pooled_llr_z

POSITIONS = 24  # digraphs starting at r = 1..24


@pytest.mark.figure
def test_fig4_fm_digraphs_in_initial_bytes(benchmark, config):
    num_keys = config.scaled(1 << 21, maximum=1 << 25)
    spec = DatasetSpec(
        kind="consec", num_keys=num_keys, positions=POSITIONS, label="fig4"
    )
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config), rounds=1, iterations=1
    )

    rows = []
    matches, trials, p_alt, p_null = [], [], [], []
    for r in range(1, POSITIONS + 1):
        table = counts[r - 1].astype(np.float64)
        total = table.sum()
        row_p = table.sum(axis=1) / total
        col_p = table.sum(axis=0) / total
        for (a, b), long_term_p in fm_biased_cells(position_to_counter(r), r=r):
            observed = int(counts[r - 1][a, b])
            independence_p = float(row_p[a] * col_p[b])
            if independence_p <= 0:
                continue
            measured_q = observed / total / independence_p - 1.0
            # Long-term relative sign from Table 1 (paper: signs match).
            expected_sign = 1 if long_term_p > 2.0**-16 else -1
            matches.append(observed)
            trials.append(int(total))
            # Model: independence baseline modulated by the long-term q.
            q_long = long_term_p * 2.0**16 - 1.0
            p_alt.append(independence_p * (1.0 + q_long))
            p_null.append(independence_p)
            if r <= 8:
                rows.append(
                    (
                        f"r={r} ({a},{b})",
                        f"{'+' if expected_sign > 0 else '-'}",
                        f"{measured_q:+.5f}",
                    )
                )
    pooled = pooled_llr_z(
        np.array(matches), np.array(trials), np.array(p_alt), np.array(p_null)
    )
    print()
    print(
        format_table(
            ["digraph at position", "paper sign", "measured q"],
            rows,
            title=(
                f"Fig 4 reproduction: FM digraphs in initial bytes, "
                f"{num_keys} keys (showing r <= 8)"
            ),
        )
    )
    print(
        f"pooled LLR preference for FM-present over independence: "
        f"{pooled:+.2f} sigma over {len(matches)} (position, cell) pairs"
    )
    print("note: the paper's per-cell curves need ~2^35 keys.")

    assert len(matches) >= POSITIONS  # every position contributed cells
    assert pooled > -3.0
