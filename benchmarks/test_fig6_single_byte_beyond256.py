"""Figure 6: single-byte distributions beyond position 256.

Paper: all initial 513 bytes are biased; beyond position 256 the
distributions at 272/304/336/368 show key-length-dependent peaks at
Z_{256+16k} = 32k (deviations of order 1e-7 absolute, measured with
2^47 keys).

Reproduction: measure the distributions at the same positions and report
the z-score of the k*32 cell versus uniform, pooled across k = 1..7.
Power analysis says full separation needs ~2^37 keys, so the gate is
consistency plus a non-contrarian pooled statistic; the benchmark also
verifies the *strong* in-range single-byte biases (Z_2 = 0 and the
aggregated zero bias) as positive controls.
"""

import numpy as np
import pytest

from repro.datasets import DatasetSpec, generate_dataset
from repro.utils.tables import format_table

from _shared import z_score

POSITIONS = 272  # covers 256 + 16 for k = 1; deeper ks need more length


@pytest.mark.figure
def test_fig6_beyond_256(benchmark, config):
    num_keys = config.scaled(1 << 23, maximum=1 << 26)
    length = 368 if config.scale >= 1.0 else 272
    spec = DatasetSpec(
        kind="single", num_keys=num_keys, positions=length, label="fig6"
    )
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config), rounds=1, iterations=1
    )

    rows = []
    pooled_num, pooled_den = 0.0, 0.0
    for k in range(1, 8):
        position = 256 + 16 * k
        if position > length:
            continue
        value = (32 * k) & 0xFF
        observed = int(counts[position - 1, value])
        z = z_score(observed, num_keys, 1.0 / 256.0)
        pooled_num += z
        pooled_den += 1.0
        rows.append(
            (
                f"Z_{position} = {value}",
                f"{observed / num_keys * 256:.5f}",
                f"{z:+.2f}",
            )
        )
    pooled = pooled_num / np.sqrt(pooled_den) if pooled_den else 0.0
    print()
    print(
        format_table(
            ["key-length cell (§3.3.3)", "measured p*256", "z vs uniform"],
            rows,
            title=f"Fig 6 reproduction over {num_keys} keys",
        )
    )
    print(f"pooled z across k: {pooled:+.2f} "
          "(paper-scale separation needs ~2^37 keys)")

    # Positive controls: biases that ARE separable at this scale.
    z2_zero = z_score(int(counts[1, 0]), num_keys, 1.0 / 256.0)
    print(f"positive control Z_2 = 0: z = {z2_zero:+.1f}")
    assert z2_zero > 20.0
    # Aggregated zero bias over positions 3..255 (Maitra/Sen Gupta).
    zero_obs = int(counts[2:255, 0].sum())
    zero_z = z_score(zero_obs, num_keys * 253, 1.0 / 256.0)
    print(f"positive control pooled Z_r = 0 (r=3..255): z = {zero_z:+.1f}")
    assert zero_z > 4.0
    assert pooled > -4.0
