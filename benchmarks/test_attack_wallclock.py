"""§5.4 / §6.3: the wall-clock arithmetic behind the headline claims.

Paper numbers:
- TKIP: ~2500 injected packets/s; 9.5 x 2^20 captures in about an hour;
  one capture of 6.2 x 2^27 sufficed in the live TLS run after 52 h.
- TLS: ~4450 requests/s idle (4100 busy); 9 x 2^27 ciphertexts in ~75 h;
  >20000 brute-force tests/s so all 2^23 candidates take < 7 minutes.

Reproduction: the same arithmetic from the same rate constants, plus a
measured throughput for this library's brute-force oracle loop.
"""

import pytest

from repro.simulate import tkip_timeline, tls_timeline
from repro.tls import BruteForceOracle, PAPER_REQUEST_RATE_BUSY
from repro.utils.tables import format_table


@pytest.mark.table
def test_wallclock_arithmetic(benchmark):
    def run():
        return tkip_timeline(), tls_timeline(), tls_timeline(int(6.2 * 2**27))

    tkip, tls, tls_lucky = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["claim", "paper", "reproduced"],
            [
                (
                    "TKIP capture (9.5 x 2^20 pkts)",
                    "~1 hour",
                    f"{tkip.capture_hours:.2f} h",
                ),
                (
                    "TLS capture (9 x 2^27 reqs)",
                    "75 hours",
                    f"{tls.capture_hours:.1f} h",
                ),
                (
                    "TLS capture, lucky run (6.2 x 2^27)",
                    "52 hours",
                    f"{tls_lucky.capture_hours:.1f} h",
                ),
                (
                    "brute force 2^23 candidates",
                    "< 7 min",
                    f"{tls.search_seconds / 60:.1f} min",
                ),
            ],
            title="§5.4 / §6.3 wall-clock arithmetic",
        )
    )
    busy = tls_timeline(9 * 2**27, request_rate=PAPER_REQUEST_RATE_BUSY)
    print(f"busy-browser variant (4100 req/s): {busy.capture_hours:.1f} h")

    assert 1.0 < tkip.capture_hours < 1.25
    assert 74.0 < tls.capture_hours < 77.0
    assert 51.0 < tls_lucky.capture_hours < 53.0
    assert tls.search_seconds < 7 * 60


@pytest.mark.table
def test_bruteforce_oracle_throughput(benchmark):
    """The paper's tool tested >20000 cookies/s; measure this library's
    oracle loop (a pure-Python stand-in for the pipelined HTTP tester)."""
    secret = b"Xj9#qL2mPw!aZr7v"
    candidates = [bytes([i % 256]) * 16 for i in range(20000)] + [secret]
    oracle = BruteForceOracle(secret)

    def run():
        oracle.attempts = 0
        found, attempts = oracle.search(iter(candidates))
        return attempts

    attempts = benchmark(run)
    assert attempts == len(candidates)
