"""Figure 8: TKIP MIC-key recovery success rate vs captured ciphertexts.

Paper: success of obtaining the MIC key using a ~2^30-candidate list vs
using only the two best candidates, over 1..15 x 2^20 captures (256
simulations per point).  The candidate list dominates top-2 everywhere.

Reproduction: identical pipeline over a scaled TSC subspace and capture
counts (sampled sufficient statistics; see repro.simulate).  Shape requirements:
success non-decreasing in captures, and candidate list >= top-2 at every
point.
"""

import pytest
from itertools import islice

from repro.analysis import success_rate_table
from repro.config import ReproConfig
from repro.core.candidates.lazy import lazy_candidates
from repro.simulate import WifiAttackSimulation, sampled_capture
from repro.tkip.attack import position_log_likelihoods
from repro.tkip.crc import Crc32
from repro.tkip.michael import michael_header, recover_key


def _run_point(config, sim, per_tsc, packets_per_tsc, trials, budget):
    plaintext = sim.true_plaintext
    known = sim.spec.msdu_data()
    true_tail = plaintext[len(known):]
    unknown = list(range(len(known) + 1, len(plaintext) + 1))
    list_wins = 0
    top2_wins = 0
    for t in range(trials):
        capture = sampled_capture(
            per_tsc,
            plaintext,
            range(1, len(plaintext) + 1),
            packets_per_tsc=packets_per_tsc,
            seed=config.rng("fig8", packets_per_tsc, t),
        )
        loglik = position_log_likelihoods(capture, per_tsc, unknown)
        prefix_crc = Crc32().update(known)
        for rank, (cand, _s) in enumerate(
            islice(lazy_candidates(loglik), budget)
        ):
            if prefix_crc.copy().update(cand[:8]).digest() == cand[8:]:
                if cand == true_tail:
                    list_wins += 1
                    if rank < 2:
                        top2_wins += 1
                break
    return list_wins / trials, top2_wins / trials


@pytest.mark.figure
def test_fig8_mic_key_recovery(benchmark, config, per_tsc_dists):
    trials = config.scaled(8, maximum=128)
    budget = config.scaled(1 << 15, maximum=1 << 22)
    sim = WifiAttackSimulation(ReproConfig(seed=config.seed + 8))
    sweep = [1 << 6, 1 << 8, 1 << 10, 1 << 12]

    def run():
        series = {"candidate list": [], "top-2 only": []}
        for packets in sweep:
            list_rate, top2_rate = _run_point(
                config, sim, per_tsc_dists, packets, trials, budget
            )
            series["candidate list"].append(list_rate)
            series["top-2 only"].append(top2_rate)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    num_tsc = len(per_tsc_dists.tsc_values)
    print()
    print(
        success_rate_table(
            "packets/TSC",
            series,
            [f"2^{p.bit_length()-1}" for p in sweep],
            title=(
                f"Fig 8 reproduction: MIC key recovery "
                f"({num_tsc} TSC values, {trials} trials/point, "
                f"candidate budget 2^{budget.bit_length()-1})"
            ),
        )
    )
    print("paper shape: list search >> top-2; both rise with captures; "
          "paper x-axis is 1..15 x 2^20 total captures over all 65536 TSCs.")

    lst, top2 = series["candidate list"], series["top-2 only"]
    # Who wins: the candidate list dominates top-2 everywhere.
    assert all(a >= b for a, b in zip(lst, top2))
    # Success grows with data and reaches certainty at the top end.
    assert lst[-1] >= max(lst[0], 0.9)

    # Sanity: a successful run's MIC inverts to a Michael key that
    # regenerates the MIC (the §5.3 derivation).
    plaintext = sim.true_plaintext
    known = sim.spec.msdu_data()
    mic = plaintext[len(known):len(known) + 8]
    header = michael_header(sim.campaign.da, sim.campaign.sa) + known
    assert recover_key(header, mic) == sim.victim.mic_key
