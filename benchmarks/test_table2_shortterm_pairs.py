"""Table 2: new biases between (non-)consecutive initial bytes.

Paper: 7 consecutive key-length-dependent pairs Z_{16w-1} = Z_{16w} =
256-16w plus 15 non-consecutive pairs, probabilities printed to 5
decimals in the 2^a (1 +/- 2^b) notation.

Reproduction: count exactly those cells over scaled key material and
compare measured vs paper vs the independence baseline.  The strongest
pair (w = 1, |q| = 2^-4.9) separates from its baseline only around 2^30
keys, so we report per-row z-scores against both hypotheses plus the
pooled LLR sigma, and verify the *marginal* key-length bias
(Z_16 = 240), which is separable at this scale.
"""

import numpy as np
import pytest

from repro.biases import TABLE2_ALL, KEYLEN_BIAS_16
from repro.datasets import DatasetSpec, generate_dataset
from repro.utils.tables import format_table

from _shared import pooled_llr_z, z_score


@pytest.mark.table
def test_table2_pair_biases(benchmark, config):
    num_keys = config.scaled(1 << 24, maximum=1 << 27)
    pairs = tuple(b.positions for b in TABLE2_ALL)
    spec = DatasetSpec(
        kind="pairs", num_keys=num_keys, pairs=pairs, label="table2"
    )

    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config), rounds=1, iterations=1
    )

    rows = []
    matches, paper_p, base_p = [], [], []
    for idx, bias in enumerate(TABLE2_ALL):
        table = counts[idx]
        observed = int(table[bias.values[0], bias.values[1]])
        measured = observed / num_keys
        matches.append(observed)
        paper_p.append(bias.probability)
        base_p.append(bias.baseline)
        rows.append(
            (
                f"Z{bias.positions[0]}={bias.values[0]} & "
                f"Z{bias.positions[1]}={bias.values[1]}",
                f"{bias.probability * 2**16:.4f}",
                f"{measured * 2**16:.4f}",
                f"{z_score(observed, num_keys, bias.baseline):+.2f}",
                f"{z_score(observed, num_keys, bias.probability):+.2f}",
            )
        )
    pooled = pooled_llr_z(
        np.array(matches),
        np.full(len(matches), num_keys),
        np.array(paper_p),
        np.array(base_p),
    )
    print()
    print(
        format_table(
            [
                "pair (Table 2)",
                "paper 2^16*p",
                "measured 2^16*p",
                "z vs baseline",
                "z vs paper",
            ],
            rows,
            title=f"Table 2 reproduction over {num_keys} keys",
        )
    )
    print(f"pooled LLR preference for the paper's model: {pooled:+.2f} sigma")

    # Marginal key-length bias Z16 = 240: separable at this scale.
    z16_table = counts[[b.positions for b in TABLE2_ALL].index((15, 16))]
    z16_240 = int(z16_table[:, 240].sum())
    z_marginal = z_score(z16_240, num_keys, 1.0 / 256.0)
    print(
        f"marginal Z16=240: measured p*256 = {z16_240 / num_keys * 256:.4f} "
        f"(paper ~{KEYLEN_BIAS_16.probability * 256:.4f}), "
        f"z vs uniform = {z_marginal:+.1f}"
    )
    assert z_marginal > 5.0, "key-length marginal bias must be unambiguous"
    # Paper's model must not be strongly contradicted.
    assert pooled > -3.0
