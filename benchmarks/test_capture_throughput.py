"""Capture-engine throughput: batched ingestion vs the per-request path.

The ISSUE-5 acceptance gate: at 2^13 requests the batched capture engine
must sustain >= 5x the requests/second of the pre-refactor per-request
reference ingestion.  Both attacks are measured:

- **HTTPS (§6.3)**: the ``reference`` benchmarks time per-request
  ``CookieStatistics.ingest_fragment`` over *precomputed* ciphertext
  fragments (generosity toward the old path — its keystream cost is
  excluded), while ``batched`` times the full engine including keystream
  generation, XOR, and counting.
- **TKIP (§5.2)**: ``CaptureSet.add_frame`` per frame vs the batched
  per-TSC engine, same asymmetry.

Recorded pre/post baselines live in
``BENCH_<date>_capture_{pre,post}.json``; `make bench` re-records both
paths in the regular BENCH file.
"""

import numpy as np
import pytest

from repro.capture import HttpsCaptureSource, TkipCaptureSource, run_capture
from repro.config import ReproConfig
from repro.simulate import HttpsAttackSimulation
from repro.tkip.frames import TkipFrame
from repro.tkip.injection import CaptureSet
from repro.tls.attack import CookieStatistics

NUM_REQUESTS = 1 << 13

_CONFIG = ReproConfig(seed=20150812)


@pytest.fixture(scope="module")
def https_setup():
    """Small layout so the reference path finishes in benchmark time;
    both paths count the identical alignment set."""
    sim = HttpsAttackSimulation(_CONFIG, cookie_len=3, max_gap=16)
    source = HttpsCaptureSource(
        config=_CONFIG,
        layout=sim.layout,
        plaintext=sim.campaign.request_plaintext(),
        num_requests=NUM_REQUESTS,
        batch_size=4096,
        max_gap=16,
        label="bench-https-capture",
    )
    return sim, source


@pytest.fixture(scope="module")
def https_fragments(https_setup):
    """Precomputed ciphertext fragments for the per-request reference."""
    from repro.rc4.batch import batch_keystream
    from repro.rc4.keygen import derive_keys

    sim, source = https_setup
    plaintext = np.frombuffer(source.plaintext, dtype=np.uint8)
    keys = derive_keys(_CONFIG, "bench-https-fragments", NUM_REQUESTS)
    stream = batch_keystream(keys, len(plaintext))
    return [bytes(row) for row in stream ^ plaintext]


def test_https_capture_reference(benchmark, https_setup, https_fragments):
    """Pre-refactor path: per-request Python ingestion (counting only)."""
    sim, source = https_setup
    stats = CookieStatistics.empty(sim.layout, max_gap=16)

    def ingest_all():
        for fragment in https_fragments:
            stats.ingest_fragment(fragment)
        return stats

    benchmark.extra_info["requests"] = NUM_REQUESTS
    benchmark.extra_info["counts"] = NUM_REQUESTS
    result = benchmark(ingest_all)
    assert result.num_requests >= NUM_REQUESTS


def test_https_capture_batched(benchmark, https_setup):
    """Post-refactor path: full engine (keystream + XOR + counting)."""
    _sim, source = https_setup
    benchmark.extra_info["requests"] = NUM_REQUESTS
    benchmark.extra_info["counts"] = NUM_REQUESTS
    result = benchmark(lambda: run_capture(source))
    assert result.num_requests == NUM_REQUESTS


@pytest.fixture(scope="module")
def tkip_source():
    rng = np.random.default_rng(31337)
    plaintext = bytes(rng.integers(0, 256, 101, dtype=np.uint8))
    return TkipCaptureSource(
        config=_CONFIG,
        plaintext=plaintext,
        tsc_values=(0, 32768),
        packets_per_tsc=NUM_REQUESTS // 2,
        batch_size=4096,
        label="bench-tkip-capture",
    )


@pytest.fixture(scope="module")
def tkip_frames(tkip_source):
    """Precomputed frames for the per-frame reference path."""
    from repro.rc4.batch import batch_keystream
    from repro.tkip.keymix import simplified_key_batch

    plaintext = np.frombuffer(tkip_source.plaintext, dtype=np.uint8)
    frames = []
    counter = 0
    for tsc in tkip_source.tsc_values:
        rng = _CONFIG.rng("bench-tkip-frames", tsc)
        keys = simplified_key_batch(tsc, tkip_source.packets_per_tsc, rng)
        stream = batch_keystream(keys, len(plaintext))
        for row in stream ^ plaintext:
            counter += 1
            frames.append(
                TkipFrame(
                    ta=b"\x00" * 6, da=b"\x01" * 6, sa=b"\x02" * 6,
                    tsc=(counter << 16) | tsc, ciphertext=bytes(row),
                )
            )
    return frames


def test_tkip_capture_reference(benchmark, tkip_source, tkip_frames):
    """Pre-refactor path: per-frame Python ingestion (counting only)."""
    capture = CaptureSet(
        positions=range(1, len(tkip_source.plaintext) + 1),
        plaintext_len=len(tkip_source.plaintext),
    )

    def ingest_all():
        capture._seen_tsc.clear()
        for frame in tkip_frames:
            capture.add_frame(frame)
        return capture

    benchmark.extra_info["requests"] = NUM_REQUESTS
    benchmark.extra_info["counts"] = NUM_REQUESTS
    result = benchmark(ingest_all)
    assert result.num_captured >= NUM_REQUESTS


def test_tkip_capture_batched(benchmark, tkip_source):
    """Post-refactor path: full engine (keystream + XOR + counting)."""
    benchmark.extra_info["requests"] = NUM_REQUESTS
    benchmark.extra_info["counts"] = NUM_REQUESTS
    result = benchmark(lambda: run_capture(tkip_source))
    assert result.num_captured == NUM_REQUESTS
