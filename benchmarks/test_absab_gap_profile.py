"""§4.2: the ABSAB bias as a function of the gap, and the g <= 128 cap.

Paper: the ABSAB bias was empirically confirmed up to gaps of at least
135; eq 1 slightly underestimates the true strength; attacks cap the gap
at 128 because the bias decays as e^{-8g/256}.

Reproduction: digraph-repetition match rates at a grid of gaps, pooled
over positions/keys, with the model overlay; plus the *ablation* that
justifies the cap: the modelled per-alignment information at g = 128 is
~1/55 of g = 0.
"""

import numpy as np
import pytest

from repro.biases import absab_alpha, absab_relative_bias
from repro.rc4.batch import BatchRC4
from repro.rc4.keygen import derive_keys
from repro.utils.tables import format_table

from _shared import z_score

GAPS = [0, 1, 2, 4, 8, 16, 32, 64, 128]


def _match_counts(config, num_keys, stream_len, chunk=1 << 11):
    matches = np.zeros(len(GAPS), dtype=np.int64)
    trials = np.zeros(len(GAPS), dtype=np.int64)
    remaining = num_keys
    part = 0
    while remaining > 0:
        take = min(chunk, remaining)
        keys = derive_keys(config, f"absab-profile/{part}", take)
        batch = BatchRC4(keys)
        batch.skip(1023)
        rows = batch.keystream_rows(stream_len).astype(np.int32)
        digraphs = (rows[:-1] << 8) | rows[1:]
        for idx, gap in enumerate(GAPS):
            a = digraphs[: -(gap + 2)]
            b = digraphs[gap + 2 :]
            matches[idx] += int((a == b).sum())
            trials[idx] += a.size
        remaining -= take
        part += 1
    return matches, trials


@pytest.mark.figure
def test_absab_gap_profile(benchmark, config):
    num_keys = config.scaled(1 << 11, maximum=1 << 15)
    stream_len = config.scaled(1 << 12, maximum=1 << 15)

    matches, trials = benchmark.pedantic(
        lambda: _match_counts(config, num_keys, stream_len),
        rounds=1,
        iterations=1,
    )

    rows = []
    pooled_z = 0.0
    for idx, gap in enumerate(GAPS):
        alpha = absab_alpha(gap)
        measured = matches[idx] / trials[idx]
        z_u = z_score(int(matches[idx]), int(trials[idx]), 2.0**-16)
        pooled_z += z_u
        rows.append(
            (
                gap,
                f"{alpha * 2**16:.5f}",
                f"{measured * 2**16:.5f}",
                f"{z_u:+.2f}",
            )
        )
    pooled_z /= np.sqrt(len(GAPS))
    print()
    print(
        format_table(
            ["gap g", "model 2^16*alpha(g)", "measured 2^16*p", "z vs uniform"],
            rows,
            title=(
                f"§4.2 ABSAB gap profile: {int(trials[0]):,} digraph pairs "
                f"per gap (uniform = 1.0)"
            ),
        )
    )
    print(f"pooled z across gaps: {pooled_z:+.2f} "
          "(per-gap separation needs ~2^36 pairs)")

    # Ablation: why the attacks cap at g = 128 — the modelled relative
    # bias (hence per-alignment information) decays e^{-8g/256}.
    ratio = absab_relative_bias(128) / absab_relative_bias(0)
    print(f"ablation: relative bias at g=128 is {ratio:.4f} of g=0 "
          f"(information ratio ~{ratio**2:.5f}); alignments beyond 128 "
          "contribute negligibly.")
    assert ratio < 0.02
    assert pooled_z > -3.0
