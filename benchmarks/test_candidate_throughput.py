"""Candidate-recovery engine throughput (paper §4.4 + §6.2-§6.3).

The paper's Fig 10 headline — 94% cookie recovery with all 2^23
candidates brute-forced in ~75 s at 20000 tests/s — exercises the whole
recovery half of the pipeline: combined FM+ABSAB likelihoods, Algorithm
2 list-Viterbi decoding over the RFC 6265 alphabet, and the best-first
oracle walk.  These benchmarks measure that chain end-to-end and its
stages in isolation, at fixed sizes (not ``REPRO_SCALE``-dependent) so
recorded BENCH pairs compare across commits on the same machine.

``test_candidate_e2e_recover_attack`` is the acceptance metric of the
candidate-engine PR: ``recover_candidates`` -> ``run_attack`` at
N=2^16 for the paper's 16-character cookie, walking the full list.
"""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import AttackError
from repro.simulate import HttpsAttackSimulation
from repro.tkip.attack import decrypt_mic_icv
from repro.tls import recover_candidates
from repro.tls.attack import run_attack, transition_log_likelihoods
from repro.tls.bruteforce import BruteForceOracle, CandidatePruner

#: Fixed sizes: the BENCH pair is a cross-commit comparison, so the
#: workload must not move with REPRO_SCALE.
N_CANDIDATES = 1 << 16
NUM_SAMPLES = 1 << 26
MAX_GAP = 32
SEED = 20150812


@pytest.fixture(scope="module")
def sim16():
    return HttpsAttackSimulation(
        ReproConfig(seed=SEED), cookie_len=16, max_gap=MAX_GAP
    )


@pytest.fixture(scope="module")
def stats16(sim16):
    return sim16.sampled_statistics(NUM_SAMPLES)


def test_candidate_e2e_recover_attack(benchmark, sim16, stats16):
    """End-to-end likelihoods -> Algorithm 2 -> pruner -> oracle at
    N=2^16 for the paper's 16-char cookie, walking the full candidate
    list (the secret byte 0xFF is outside the RFC 6265 alphabet, so the
    walk depth is deterministic regardless of the statistics)."""
    depth = {}

    def run():
        oracle = BruteForceOracle(b"\xff" * 16)
        pruner = CandidatePruner.for_layout(sim16.layout, sim16.cookie_charset)
        try:
            run_attack(
                stats16,
                oracle,
                num_candidates=N_CANDIDATES,
                charset=sim16.cookie_charset,
                pruner=pruner,
            )
        except AttackError:
            pass  # exhausted the list: the deterministic full walk
        depth["attempts"] = oracle.attempts
        return oracle

    benchmark.extra_info["counts"] = N_CANDIDATES
    benchmark.pedantic(run, rounds=1, iterations=1)
    assert depth["attempts"] == N_CANDIDATES


def test_recover_candidates_short_cookie(benchmark):
    """Algorithm 2 + a full-list rank scan for a 4-char cookie at
    N=2^16 (the short-cookie regime of the scenario matrix).  The
    probed value is absent, so ``rank_of`` pays its worst case."""
    sim = HttpsAttackSimulation(
        ReproConfig(seed=SEED + 1), cookie_len=4, max_gap=MAX_GAP
    )
    stats = sim.sampled_statistics(NUM_SAMPLES)

    def run():
        candidates = recover_candidates(stats, N_CANDIDATES)
        assert candidates.rank_of(b"\xff" * 4) is None
        return candidates

    benchmark.extra_info["counts"] = N_CANDIDATES
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result) == N_CANDIDATES


def test_transition_likelihoods_throughput(benchmark, sim16, stats16):
    """Combined FM + ABSAB likelihoods (eq 25) across all alignments."""
    benchmark.extra_info["counts"] = len(stats16.absab_counts)
    loglik = benchmark.pedantic(
        lambda: transition_log_likelihoods(stats16), rounds=2, iterations=1
    )
    assert loglik.shape == (17, 256, 256)


def test_lazy_crc_walk_throughput(benchmark):
    """TKIP-side candidate walk: lazy best-first enumeration with the
    CRC window check, exhausting a 2^13 budget (no valid candidate
    exists for random likelihoods, so the depth is deterministic)."""
    rng = np.random.default_rng(SEED)
    loglik = rng.normal(size=(12, 256))
    known = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
    budget = 1 << 13

    def run():
        with pytest.raises(AttackError):
            decrypt_mic_icv(loglik, known, max_candidates=budget)

    benchmark.extra_info["counts"] = budget
    benchmark.pedantic(run, rounds=2, iterations=1)
