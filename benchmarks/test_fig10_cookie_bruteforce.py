"""Figure 10: brute-forcing a 16-character cookie.

Paper: success rate of recovering a 16-character secure cookie with
~2^23 candidates vs only the most likely candidate, over 1..15 x 2^27
ciphertexts (256 simulations per point); 94% within 2^23 candidates at
9 x 2^27.

Reproduction: the identical pipeline — FM + ABSAB likelihoods, Algorithm
2 restricted to the 90-character RFC 6265 alphabet — with scaled
candidate budgets and trial counts (statistic-level sampling; see repro.simulate).
Shape requirements: candidate-list success dominates top-1 everywhere
and rises with ciphertexts.
"""

import pytest

from repro.analysis import success_rate_table
from repro.config import ReproConfig
from repro.simulate import HttpsAttackSimulation
from repro.tls import recover_candidates


@pytest.mark.figure
def test_fig10_cookie_recovery(benchmark, config):
    trials = config.scaled(5, maximum=64)
    budget = config.scaled(1 << 10, maximum=1 << 16)
    cookie_len = 16
    max_gap = config.scaled(32, maximum=128)
    # With max_gap 32 (a quarter of the paper's 258 alignments) the curve
    # shifts right by ~2 octaves; sampling cost is O(cells), not O(N), so
    # sweeping to 2^32 is free.
    exponents = [28, 30, 32]

    def run():
        series = {"candidate list": [], "most likely only": []}
        for exp in exponents:
            list_wins = 0
            top1_wins = 0
            for t in range(trials):
                sim = HttpsAttackSimulation(
                    ReproConfig(seed=config.seed + 100 * exp + t),
                    cookie_len=cookie_len,
                    max_gap=max_gap,
                )
                stats = sim.sampled_statistics(1 << exp)
                candidates = recover_candidates(stats, budget)
                rank = candidates.rank_of(sim.secret)
                if rank is not None:
                    list_wins += 1
                    if rank == 0:
                        top1_wins += 1
            series["candidate list"].append(list_wins / trials)
            series["most likely only"].append(top1_wins / trials)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        success_rate_table(
            "ciphertexts",
            series,
            [f"2^{e}" for e in exponents],
            title=(
                f"Fig 10 reproduction: {cookie_len}-char cookie, "
                f"{trials} trials/point, budget 2^{budget.bit_length()-1} "
                f"candidates, max gap {max_gap}"
            ),
        )
    )
    print("paper: 94% success within 2^23 candidates at 9 x 2^27 "
          "ciphertexts with 258 ABSAB gaps; top-1 needs far more data.")

    lst, top1 = series["candidate list"], series["most likely only"]
    assert all(a >= b for a, b in zip(lst, top1))
    assert lst[-1] >= lst[0]
    assert lst[-1] >= 0.8  # high success at the top of the sweep
