"""§3.4: long-term biases at multiples of 256 — Sen Gupta's (0,0) and the
paper's new (128,0) (eq 8).

Paper: Pr[(Z_{256w}, Z_{256w+2}) = (0,0)] = Pr[... = (128,0)]
     = 2^-16 (1 + 2^-8) for w >= 1, found with 2^12 keys x 2^40 bytes.

Reproduction: gap-1 digraph counts at w*256 positions pooled over many w
and keys; per-cell z plus pooled LLR against uniform.  Per-cell
separation needs ~2^36 aligned samples; at laptop scale the gate is
consistency and a non-contrarian pooled statistic.
"""

import numpy as np
import pytest

from repro.biases import NEW_128_0, SENGUPTA_00
from repro.rc4.batch import BatchRC4
from repro.rc4.keygen import derive_keys
from repro.utils.tables import format_table

from _shared import pooled_llr_z, z_score


def _aligned_counts(config, num_keys, num_w, chunk=1 << 12):
    """Count (Z_{256w}, Z_{256w+2}) hits on (0,0) and (128,0)."""
    hits = np.zeros(2, dtype=np.int64)
    trials = 0
    remaining = num_keys
    part = 0
    length = 256 * num_w + 3
    while remaining > 0:
        take = min(chunk, remaining)
        keys = derive_keys(config, f"w256/{part}", take)
        rows = BatchRC4(keys).keystream_rows(length)
        for w in range(1, num_w + 1):
            first = rows[256 * w - 1]  # Z_{256w} (1-indexed)
            second = rows[256 * w + 1]  # Z_{256w+2}
            hits[0] += int(((first == 0) & (second == 0)).sum())
            hits[1] += int(((first == 128) & (second == 0)).sum())
            trials += take
        remaining -= take
        part += 1
    return hits, trials


@pytest.mark.table
def test_longterm_w256_biases(benchmark, config):
    num_keys = config.scaled(1 << 15, maximum=1 << 20)
    num_w = config.scaled(8, maximum=64)

    hits, trials = benchmark.pedantic(
        lambda: _aligned_counts(config, num_keys, num_w), rounds=1, iterations=1
    )

    uniform = 2.0**-16
    biases = [SENGUPTA_00, NEW_128_0]
    rows = []
    for bias, h in zip(biases, hits):
        rows.append(
            (
                f"(Z_w256, Z_w256+2) = {bias.values}",
                f"{bias.probability * 2**16:.5f}",
                f"{h / trials * 2**16:.5f}",
                f"{z_score(int(h), trials, uniform):+.2f}",
            )
        )
    pooled = pooled_llr_z(
        hits,
        np.full(2, trials),
        np.array([b.probability for b in biases]),
        np.full(2, uniform),
    )
    print()
    print(
        format_table(
            ["cell", "paper 2^16*p", "measured 2^16*p", "z vs uniform"],
            rows,
            title=(
                f"§3.4 long-term w*256 biases: {trials:,} aligned digraphs "
                f"({num_keys} keys x {num_w} w-positions)"
            ),
        )
    )
    print(f"pooled LLR preference for the biased model: {pooled:+.2f} sigma "
          "(paper-scale separation needs ~2^36 aligned samples)")

    assert trials == num_keys * num_w
    assert pooled > -3.0


@pytest.mark.table
def test_eq9_equality_magnitude_statement(benchmark, config):
    """Eq 9's |q| = 2^-16 equalities are beyond any laptop budget; this
    bench documents the required sample size via power analysis rather
    than pretending to measure them."""
    from repro.stats import required_samples

    needed = benchmark.pedantic(
        lambda: required_samples(1.0 / 256.0, 2.0**-16), rounds=1, iterations=1
    )
    print(f"\neq 9 (|q| = 2^-16 on p = 2^-8): requires ~2^"
          f"{needed.bit_length() - 1} samples per pair — the paper itself "
          "calls reliable detection an open research direction (§3.4).")
    assert needed > 1 << 40
