"""§5.2 ablation: packet structure — 0-byte vs 7-byte TCP payload.

Paper: with no TCP payload the MIC+ICV sit at positions 49..60 where 7
bytes are strongly biased; a 7-byte payload moves them to 56..67 where 8
bytes are strongly biased, and simulations confirmed the higher
simultaneous-decryption probability.  The 7-byte payload also makes the
frame length unique on the air.

Reproduction: score positions by the KL strength of the per-TSC
distributions and count strong positions under each window; then run the
recovery at both payload lengths and compare success.
"""

import numpy as np
import pytest
from itertools import islice

from repro.config import ReproConfig
from repro.core.candidates.lazy import lazy_candidates
from repro.simulate import WifiAttackSimulation, sampled_capture
from repro.tkip import payload_choice_report
from repro.tkip.attack import biased_position_strength, position_log_likelihoods
from repro.tkip.crc import Crc32
from repro.utils.tables import format_table


def _success_rate(config, payload, per_tsc, packets, trials, budget):
    sim = WifiAttackSimulation(
        ReproConfig(seed=config.seed + len(payload)), payload=payload
    )
    plaintext = sim.true_plaintext
    known = sim.spec.msdu_data()
    true_tail = plaintext[len(known):]
    unknown = list(range(len(known) + 1, len(plaintext) + 1))
    wins = 0
    for t in range(trials):
        capture = sampled_capture(
            per_tsc,
            plaintext,
            range(1, len(plaintext) + 1),
            packets_per_tsc=packets,
            seed=config.rng("payload-choice", len(payload), t),
        )
        loglik = position_log_likelihoods(capture, per_tsc, unknown)
        prefix_crc = Crc32().update(known)
        for cand, _s in islice(lazy_candidates(loglik), budget):
            if prefix_crc.copy().update(cand[:8]).digest() == cand[8:]:
                wins += cand == true_tail
                break
    return wins / trials


@pytest.mark.figure
def test_payload_choice(benchmark, config, per_tsc_dists):
    trials = config.scaled(6, maximum=64)
    packets = 1 << 9
    budget = 1 << 14

    def run():
        report = payload_choice_report(per_tsc_dists)
        rate0 = _success_rate(config, b"", per_tsc_dists, packets, trials, budget)
        rate7 = _success_rate(
            config, b"ATTACK!", per_tsc_dists, packets, trials, budget
        )
        return report, rate0, rate7

    report, rate0, rate7 = benchmark.pedantic(run, rounds=1, iterations=1)
    strength = biased_position_strength(per_tsc_dists)
    print()
    print(
        format_table(
            ["payload bytes", "MIC/ICV window", "strong positions", "recovery rate"],
            [
                (0, "49..60", report[0], f"{rate0:.2f}"),
                (7, "56..67", report[7], f"{rate7:.2f}"),
            ],
            title=(
                f"§5.2 payload-structure ablation "
                f"({trials} trials, {packets} packets/TSC)"
            ),
        )
    )
    top = np.argsort(strength)[::-1][:10] + 1
    print(f"ten strongest positions by per-TSC KL: {sorted(top.tolist())}")
    print("paper: the 7-byte window covers more strongly biased positions "
          "and additionally gives the frame a unique length.")

    # The frame-length uniqueness part of the argument:
    assert 48 + 7 + 12 != 48 + 12
    # The recovery-rate comparison must not invert decisively.
    assert rate7 >= rate0 - 0.34
