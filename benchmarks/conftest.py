"""Shared benchmark fixtures.

Benchmarks are sized by ``REPRO_SCALE`` (default 1.0 keeps the whole
suite in minutes).  Expensive shared artefacts — the per-TSC keystream
distributions — are generated once per session and cached on disk under
``.repro-cache/`` so repeated benchmark runs are fast.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import get_config
from repro.tkip import PerTscDistributions, default_tsc_space, generate_per_tsc

CACHE_DIR = Path(__file__).resolve().parent.parent / ".repro-cache"


@pytest.fixture(scope="session")
def config():
    return get_config()


@pytest.fixture(scope="session")
def per_tsc_dists(config) -> PerTscDistributions:
    """Per-TSC keystream distributions for the TKIP benchmarks (§5.1).

    Paper: 65536 TSC pairs x 2^32 keys (10 CPU-years).  Here: a scaled
    TSC subspace, cached across benchmark runs.
    """
    num_tsc = config.scaled(16, maximum=256)
    keys_per_tsc = config.scaled(1 << 13, maximum=1 << 18)
    length = 68
    cache = CACHE_DIR / f"per_tsc_{config.seed}_{num_tsc}_{keys_per_tsc}_{length}.npz"
    if cache.exists():
        return PerTscDistributions.load(cache)
    dists = generate_per_tsc(
        config, default_tsc_space(num_tsc), keys_per_tsc, length=length
    )
    CACHE_DIR.mkdir(exist_ok=True)
    dists.save(cache)
    return dists


def pytest_configure(config):
    config.addinivalue_line("markers", "figure: reproduces a paper figure")
    config.addinivalue_line("markers", "table: reproduces a paper table")
