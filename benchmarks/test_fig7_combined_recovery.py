"""Figure 7: recovering two bytes — ABSAB vs FM vs the combination.

Paper: success rate of decrypting two plaintext bytes using (1) a single
ABSAB bias, (2) the Fluhrer-McGrew biases, (3) FM combined with 258
ABSAB biases (eq 25); 2048 simulations per point over 2^27..2^39
ciphertexts.  Combination wins by orders of magnitude.

Reproduction: identical methodology (sufficient-statistic sampling; see
repro.simulate) at scaled N and trial counts.  The required qualitative
shape: combined >= FM-only >= single-ABSAB at every N, with the combined
curve reaching high success within the sweep.
"""

import numpy as np
import pytest

from repro.analysis import success_rate_table
from repro.biases.fluhrer_mcgrew import fm_biased_cells
from repro.core import (
    absab_log_likelihoods,
    combine_likelihoods,
    digraph_log_likelihoods,
)
from repro.simulate import (
    sample_absab_differential_counts,
    sample_digraph_counts,
)
from repro.biases import fm_digraph_distribution

I_COUNTER = 7
TRUTH = (0x41, 0x7A)
KNOWN = (0x3D, 0x3B)  # '=' and ';' — the cookie-boundary bytes


def _fm_model():
    cells = fm_biased_cells(I_COUNTER)
    mass = sum(p for _, p in cells)
    return cells, (1.0 - mass) / (65536 - len(cells))


def _trial(n, rng, gaps):
    """One simulation: sample counts, return the three likelihoods."""
    cells, uniform_p = _fm_model()
    fm_counts = sample_digraph_counts(
        fm_digraph_distribution(I_COUNTER), n, TRUTH, seed=rng, method="poisson"
    )
    lam_fm = digraph_log_likelihoods(
        fm_counts.astype(np.float64), cells, uniform_p, float(n)
    )
    diff = (TRUTH[0] ^ KNOWN[0], TRUTH[1] ^ KNOWN[1])
    lam_absab_all = []
    for gap in gaps:
        counts = sample_absab_differential_counts(
            gap, n, diff, seed=rng, method="poisson"
        )
        lam_absab_all.append(
            absab_log_likelihoods(counts.astype(np.float64), gap, KNOWN, float(n))
        )
    lam_absab_single = lam_absab_all[0]
    lam_combined = combine_likelihoods(lam_fm, *lam_absab_all)
    return lam_absab_single, lam_fm, lam_combined


def _success(lam) -> bool:
    return np.unravel_index(np.argmax(lam), lam.shape) == TRUTH


@pytest.mark.figure
def test_fig7_combined_vs_individual(benchmark, config):
    trials = config.scaled(12, maximum=256)
    exponents = [28, 30, 32, 34]
    # Both-sided gaps as in the paper (2 x 129); scaled default uses a
    # subset, still demonstrating the combination effect.
    num_gaps = config.scaled(64, maximum=258)
    gaps = [g % 129 for g in range(num_gaps)]

    def run():
        series = {"ABSAB only": [], "FM only": [], "Combined": []}
        for exp in exponents:
            wins = [0, 0, 0]
            for t in range(trials):
                rng = np.random.default_rng(config.seed + 1000 * exp + t)
                results = _trial(1 << exp, rng, gaps)
                for idx, lam in enumerate(results):
                    wins[idx] += _success(lam)
            series["ABSAB only"].append(wins[0] / trials)
            series["FM only"].append(wins[1] / trials)
            series["Combined"].append(wins[2] / trials)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        success_rate_table(
            "ciphertexts",
            series,
            [f"2^{e}" for e in exponents],
            title=(
                f"Fig 7 reproduction: success decrypting 2 bytes "
                f"({trials} trials/point, {len(gaps)} ABSAB gaps combined)"
            ),
        )
    )
    print("paper shape: Combined >> FM only >> single ABSAB; "
          "crossover to high success within the sweep for Combined.")

    combined, fm_only, absab_only = (
        series["Combined"],
        series["FM only"],
        series["ABSAB only"],
    )
    # Shape assertions (who wins):
    assert sum(combined) >= sum(fm_only) >= sum(absab_only)
    # The combined estimator must reach high success within the sweep.
    assert combined[-1] >= 0.9
    # Monotone trend for the combined curve (allowing sampling slack).
    assert combined[-1] >= combined[0]
