"""Shared helpers for the benchmark harness (not a test module).

Keystream statistics run through the library's Session facade
(:meth:`repro.api.Session.dataset` -> fused generate-and-count kernels
plus shared-memory shard reduction) — the same orchestration path every
other consumer uses, so benchmark numbers measure what users get.  Each
call builds a fresh session (no disk cache), so repeated benchmark
rounds keep regenerating rather than timing a cache hit.  Only the
statistics post-processing (z-scores, pooled LLR) lives here.
"""

from __future__ import annotations

import numpy as np

from repro.api import Session
from repro.config import ReproConfig
from repro.datasets import DatasetSpec


def parallel_fm_matches(
    config: ReproConfig,
    label: str,
    total_keys: int,
    stream_len: int,
    drop: int,
    targets: np.ndarray,
    *,
    processes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Count per-rule digraph matches over ``total_keys`` keystreams.

    ``targets`` is int32 of shape ``(num_rules, stream_len)``: per rule,
    the target digraph code ``(first << 8) | second`` for each stream row,
    with -1 marking rows where the rule does not apply.  Both the target
    cell and applicability of Fluhrer–McGrew rules depend only on the PRGA
    counter ``i = (drop + row + 1) mod 256``, so the counts are read off
    the engine's counter-binned long-term dataset: ``matches[rule] =
    sum_i counts[i, first_i, second_i]`` over the rule's applicable ``i``
    values.

    Returns per-rule (match counts, trials).
    """
    num_rules, target_len = targets.shape
    if target_len != stream_len:
        raise ValueError(
            f"targets cover {target_len} rows, expected stream_len={stream_len}"
        )
    spec = DatasetSpec(
        kind="longterm",
        num_keys=total_keys,
        stream_len=stream_len,
        drop=drop,
        gap=0,
        label=label,
    )
    counts = Session(config).dataset(spec, processes=processes)

    i_of_row = (drop + np.arange(stream_len) + 1) % 256
    matches = np.zeros(num_rules, dtype=np.int64)
    trials = np.zeros(num_rules, dtype=np.int64)
    for rule in range(num_rules):
        applicable = targets[rule] >= 0
        trials[rule] = int(applicable.sum()) * total_keys
        for i in np.unique(i_of_row[applicable]):
            rows_i = applicable & (i_of_row == i)
            if int(rows_i.sum()) != int((i_of_row == i).sum()):
                raise ValueError(
                    f"rule {rule} applies to only some rows with counter "
                    f"i={i}; per-counter aggregation needs i-determined rules"
                )
            codes = np.unique(targets[rule][rows_i])
            if codes.size != 1:
                raise ValueError(
                    f"rule {rule} has inconsistent targets for counter i={i}"
                )
            code = int(codes[0])
            # counts[i] aggregates every stream row with this counter
            # value, which is exactly the rule's applicable-row set.
            matches[rule] += int(counts[i, code >> 8, code & 0xFF])
    return matches, trials


def z_score(matches: int, trials: int, p_null: float) -> float:
    """Normal-approximation z of observing ``matches`` under ``p_null``."""
    if trials == 0:
        return 0.0
    expected = trials * p_null
    return float((matches - expected) / np.sqrt(expected * (1.0 - p_null)))


def pooled_llr_z(
    matches: np.ndarray,
    trials: np.ndarray,
    p_alt: np.ndarray,
    p_null: np.ndarray,
) -> float:
    """Pooled evidence that per-rule match counts follow p_alt over p_null.

    Sums per-rule binomial log-likelihood ratios and normalises by the
    null-model standard deviation — the scalar the Table 1 benchmark
    reports ("data prefers the FM model by k sigma").
    """
    matches = np.asarray(matches, dtype=np.float64)
    trials = np.asarray(trials, dtype=np.float64)
    p_alt = np.asarray(p_alt, dtype=np.float64)
    p_null = np.asarray(p_null, dtype=np.float64)
    log_ratio_hit = np.log(p_alt / p_null)
    log_ratio_miss = np.log((1 - p_alt) / (1 - p_null))
    llr = float(
        (matches * log_ratio_hit + (trials - matches) * log_ratio_miss).sum()
    )
    mean_null = float(
        (trials * (p_null * log_ratio_hit + (1 - p_null) * log_ratio_miss)).sum()
    )
    var_null = float(
        (
            trials
            * p_null
            * (1 - p_null)
            * (log_ratio_hit - log_ratio_miss) ** 2
        ).sum()
    )
    if var_null <= 0:
        return 0.0
    return (llr - mean_null) / np.sqrt(var_null)
