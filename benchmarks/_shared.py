"""Shared helpers for the benchmark harness (not a test module).

The heavy lifting is parallel keystream generation with per-chunk
reduction — the benchmark-layer analogue of the paper's worker cluster.
Workers are module-level functions so ``multiprocessing`` can pickle
them.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.config import ReproConfig
from repro.rc4.batch import BatchRC4
from repro.rc4.keygen import derive_keys

#: Keys per worker chunk (cache-friendly for the batch generator).
CHUNK_KEYS = 1 << 13


@dataclass(frozen=True)
class StreamJob:
    """One worker's share of a keystream-statistics job."""

    config: ReproConfig
    label: str
    chunk_index: int
    num_keys: int
    stream_len: int
    drop: int


def _digraph_codes(job: StreamJob) -> np.ndarray:
    """Generate (stream_len, num_keys) int32 digraph codes for one chunk."""
    keys = derive_keys(job.config, f"{job.label}/{job.chunk_index}", job.num_keys)
    batch = BatchRC4(keys)
    if job.drop:
        batch.skip(job.drop)
    rows = batch.keystream_rows(job.stream_len + 1)
    return (rows[:-1].astype(np.int32) << 8) | rows[1:]


def _fm_match_worker(args) -> tuple[np.ndarray, np.ndarray]:
    """Count matches of per-row target digraph codes.

    Args (packed): (job, targets) where targets is int32 (num_rules,
    stream_len); -1 marks rows where a rule does not apply.

    Returns per-rule (match counts, trials).
    """
    job, targets = args
    codes = _digraph_codes(job)
    num_rules = targets.shape[0]
    matches = np.zeros(num_rules, dtype=np.int64)
    trials = np.zeros(num_rules, dtype=np.int64)
    for rule in range(num_rules):
        applicable = targets[rule] >= 0
        if not applicable.any():
            continue
        sub = codes[applicable]
        matches[rule] = int((sub == targets[rule][applicable][:, None]).sum())
        trials[rule] = sub.size
    return matches, trials


def parallel_fm_matches(
    config: ReproConfig,
    label: str,
    total_keys: int,
    stream_len: int,
    drop: int,
    targets: np.ndarray,
    *,
    processes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Count per-rule digraph matches over ``total_keys`` keystreams."""
    jobs = []
    index = 0
    remaining = total_keys
    while remaining > 0:
        take = min(CHUNK_KEYS, remaining)
        jobs.append(
            (StreamJob(config, label, index, take, stream_len, drop), targets)
        )
        remaining -= take
        index += 1
    if processes is None:
        processes = min(mp.cpu_count(), len(jobs))
    if processes <= 1 or len(jobs) == 1:
        results = [_fm_match_worker(job) for job in jobs]
    else:
        with mp.get_context("fork").Pool(processes) as pool:
            results = pool.map(_fm_match_worker, jobs)
    matches = sum(m for m, _ in results)
    trials = sum(t for _, t in results)
    return matches, trials


def z_score(matches: int, trials: int, p_null: float) -> float:
    """Normal-approximation z of observing ``matches`` under ``p_null``."""
    if trials == 0:
        return 0.0
    expected = trials * p_null
    return float((matches - expected) / np.sqrt(expected * (1.0 - p_null)))


def pooled_llr_z(
    matches: np.ndarray,
    trials: np.ndarray,
    p_alt: np.ndarray,
    p_null: np.ndarray,
) -> float:
    """Pooled evidence that per-rule match counts follow p_alt over p_null.

    Sums per-rule binomial log-likelihood ratios and normalises by the
    null-model standard deviation — the scalar the Table 1 benchmark
    reports ("data prefers the FM model by k sigma").
    """
    matches = np.asarray(matches, dtype=np.float64)
    trials = np.asarray(trials, dtype=np.float64)
    p_alt = np.asarray(p_alt, dtype=np.float64)
    p_null = np.asarray(p_null, dtype=np.float64)
    log_ratio_hit = np.log(p_alt / p_null)
    log_ratio_miss = np.log((1 - p_alt) / (1 - p_null))
    llr = float(
        (matches * log_ratio_hit + (trials - matches) * log_ratio_miss).sum()
    )
    mean_null = float(
        (trials * (p_null * log_ratio_hit + (1 - p_null) * log_ratio_miss)).sum()
    )
    var_null = float(
        (
            trials
            * p_null
            * (1 - p_null)
            * (log_ratio_hit - log_ratio_miss) ** 2
        ).sum()
    )
    if var_null <= 0:
        return 0.0
    return (llr - mean_null) / np.sqrt(var_null)
