"""Statistics-pipeline throughput: counting kernels and dataset wall-clock.

The paper's bias tables came from a cluster generating 2**44+ keystreams
(§3.2); on one machine the reproduction budget is set entirely by the
throughput of ``BatchRC4`` -> counting kernel -> shard merge.  These
benchmarks measure each stage plus the end-to-end ``generate_dataset``
wall-clock, and are the inputs to ``run_benchmarks.py`` /
``BENCH_<date>.json`` — the recorded perf trajectory of the repo.

Every benchmark stores its work size in ``benchmark.extra_info`` so the
runner can derive keys/sec and counts/sec rates.
"""

import pytest

from repro.datasets import DatasetSpec, generate_dataset
from repro.datasets.generate import (
    consec_digraph_counts,
    longterm_digraph_counts,
    single_byte_counts,
)
from repro.rc4.keygen import derive_keys

NUM_KEYS = 1 << 13
LONGTERM_STREAM = 128
LONGTERM_DROP = 1023


@pytest.fixture(scope="module")
def keys(config):
    return derive_keys(config, "pipeline-bench", NUM_KEYS)


def test_single_byte_kernel(benchmark, keys):
    """counts/sec for the single-byte kernel (Fig. 4/6 datasets)."""
    positions = 256
    benchmark.extra_info["keys"] = NUM_KEYS
    benchmark.extra_info["counts"] = NUM_KEYS * positions
    out = benchmark(lambda: single_byte_counts(keys, positions))
    assert out.sum() == NUM_KEYS * positions


def test_consec_kernel(benchmark, keys):
    """counts/sec for the consecutive-digraph kernel (Table 2 datasets)."""
    positions = 64
    benchmark.extra_info["keys"] = NUM_KEYS
    benchmark.extra_info["counts"] = NUM_KEYS * positions
    out = benchmark(lambda: consec_digraph_counts(keys, positions))
    assert out.sum() == NUM_KEYS * positions


def test_longterm_kernel(benchmark, keys):
    """counts/sec for the long-term kernel incl. the 1023-byte drop (§3.4)."""
    benchmark.extra_info["keys"] = NUM_KEYS
    benchmark.extra_info["counts"] = NUM_KEYS * LONGTERM_STREAM
    out = benchmark.pedantic(
        lambda: longterm_digraph_counts(
            keys, LONGTERM_STREAM, drop=LONGTERM_DROP, gap=0
        ),
        rounds=3,
        iterations=1,
    )
    assert out.sum() == NUM_KEYS * LONGTERM_STREAM


def test_longterm_dataset_wallclock(benchmark, config):
    """End-to-end ``generate_dataset`` wall-clock for a long-term job.

    This is the acceptance metric for the fused-engine PR: generation,
    counting, and shard reduction in one number.
    """
    spec = DatasetSpec(
        kind="longterm",
        num_keys=1 << 14,
        stream_len=LONGTERM_STREAM,
        drop=LONGTERM_DROP,
        gap=0,
        label="bench-longterm",
    )
    benchmark.extra_info["keys"] = spec.num_keys
    benchmark.extra_info["counts"] = spec.num_keys * spec.stream_len
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config, processes=1),
        rounds=2,
        iterations=1,
    )
    assert counts.sum() == spec.num_keys * spec.stream_len


def test_longterm_dataset_singlethread(benchmark, config):
    """The same long-term job pinned to one thread and the scalar kernels'
    defaults left alone — the PR-1 single-thread native path, i.e. the
    denominator of the threaded engine's speedup claim."""
    spec = DatasetSpec(
        kind="longterm",
        num_keys=1 << 14,
        stream_len=LONGTERM_STREAM,
        drop=LONGTERM_DROP,
        gap=0,
        label="bench-longterm",
    )
    benchmark.extra_info["keys"] = spec.num_keys
    benchmark.extra_info["counts"] = spec.num_keys * spec.stream_len
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config, processes=1, threads=1),
        rounds=2,
        iterations=1,
    )
    assert counts.sum() == spec.num_keys * spec.stream_len


def test_consec_dataset_wallclock(benchmark, config):
    """End-to-end ``generate_dataset`` wall-clock for a short-term job."""
    spec = DatasetSpec(
        kind="consec",
        num_keys=1 << 14,
        positions=64,
        label="bench-consec",
    )
    benchmark.extra_info["keys"] = spec.num_keys
    benchmark.extra_info["counts"] = spec.num_keys * spec.positions
    counts = benchmark.pedantic(
        lambda: generate_dataset(spec, config, processes=1),
        rounds=2,
        iterations=1,
    )
    assert counts.sum() == spec.num_keys * spec.positions
